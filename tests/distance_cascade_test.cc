/**
 * @file
 * Property suite for the lower-bound cascade and the anti-diagonal
 * DTW kernels: soundness of every bound, bit-identity of every fast
 * path against the preserved references, and pruning that provably
 * never changes a winner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/model/cascade.hh"
#include "core/model/distance.hh"
#include "core/model/distance_ref.hh"
#include "core/model/distance_scratch.hh"
#include "core/model/dtw_simd.hh"
#include "core/model/kmedoids.hh"
#include "core/model/signature.hh"
#include "stats/rng.hh"

using namespace rbv;
using namespace rbv::core;

namespace {

MetricSeries
randomSeries(std::size_t n, stats::Rng &rng)
{
    MetricSeries s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back(rng.uniform(0.2, 4.0));
    return s;
}

/** Class-structured series: what clustering inputs actually look like. */
MetricSeries
classSeries(std::size_t len, std::size_t cls, std::uint64_t seed)
{
    stats::Rng rng(seed);
    MetricSeries s;
    s.reserve(len);
    const double base = 1.0 + 0.9 * static_cast<double>(cls);
    const double freq = 0.05 + 0.01 * static_cast<double>(cls);
    for (std::size_t k = 0; k < len; ++k)
        s.push_back(base +
                    0.4 * std::sin(freq * static_cast<double>(k)) +
                    rng.uniform(-0.08, 0.08));
    return s;
}

/** Brute-force window min/max the deque sweep must reproduce. */
void
naiveEnvelope(const MetricSeries &s, std::size_t radius,
              SeriesEnvelope &out)
{
    const std::size_t n = s.size();
    out.lower.assign(n, 0.0);
    out.upper.assign(n, 0.0);
    out.radius = radius;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t lo = i >= radius ? i - radius : 0;
        const std::size_t hi = std::min(n - 1, i + radius);
        double mn = s[lo], mx = s[lo];
        for (std::size_t j = lo + 1; j <= hi; ++j) {
            mn = std::min(mn, s[j]);
            mx = std::max(mx, s[j]);
        }
        out.lower[i] = mn;
        out.upper[i] = mx;
    }
}

} // namespace

// ------------------------------------------------------------ envelope

TEST(Envelope, MatchesNaiveWindowScan)
{
    stats::Rng rng(101);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n =
            1 + static_cast<std::size_t>(rng.uniformInt(60));
        const std::size_t r =
            static_cast<std::size_t>(rng.uniformInt(20));
        const auto s = randomSeries(n, rng);
        SeriesEnvelope fast, naive;
        buildEnvelope(s, r, fast);
        naiveEnvelope(s, r, naive);
        ASSERT_EQ(fast.lower, naive.lower) << "n=" << n << " r=" << r;
        ASSERT_EQ(fast.upper, naive.upper) << "n=" << n << " r=" << r;
    }
}

TEST(Envelope, ZeroRadiusIsTheSeriesItself)
{
    stats::Rng rng(7);
    const auto s = randomSeries(17, rng);
    SeriesEnvelope e;
    buildEnvelope(s, 0, e);
    EXPECT_EQ(e.lower, s);
    EXPECT_EQ(e.upper, s);
}

// -------------------------------------------------------- bound chains

TEST(LowerBounds, KimLeqKeoghLeqExactOnRandomPairs)
{
    stats::Rng rng(202);
    const double penalties[] = {0.0, 0.3, 1.0, 5.0};
    for (int trial = 0; trial < 120; ++trial) {
        const std::size_t m =
            1 + static_cast<std::size_t>(rng.uniformInt(48));
        const std::size_t n =
            1 + static_cast<std::size_t>(rng.uniformInt(48));
        const auto x = randomSeries(m, rng);
        const auto y = randomSeries(n, rng);
        const double p = penalties[trial % 4];
        const std::size_t diff = m > n ? m - n : n - m;

        // Radius at least the length difference: the regime where the
        // Kim <= Keogh ordering holds structurally. Smaller radii are
        // exercised for soundness below.
        const std::size_t r =
            diff + static_cast<std::size_t>(rng.uniformInt(8));
        SeriesEnvelope env;
        buildEnvelope(y, r, env);

        const double exact = ref::dtwDistance(x, y, p);
        const double kim = lbKim(x, y, p);
        const double keogh = lbKeogh(x, y, env, p);
        ASSERT_LE(kim, keogh) << "m=" << m << " n=" << n << " p=" << p;
        // The bounds are sound in real arithmetic but summed in a
        // different order than the DP, so compare the way every
        // prune site does: deflated by LbPruneMargin.
        ASSERT_LE(keogh * LbPruneMargin, exact)
            << "m=" << m << " n=" << n << " p=" << p << " r=" << r;
    }
}

TEST(LowerBounds, KeoghSoundAtAnyRadius)
{
    stats::Rng rng(303);
    for (int trial = 0; trial < 120; ++trial) {
        const std::size_t m =
            1 + static_cast<std::size_t>(rng.uniformInt(40));
        const std::size_t n =
            1 + static_cast<std::size_t>(rng.uniformInt(40));
        const auto x = randomSeries(m, rng);
        const auto y = randomSeries(n, rng);
        const double p = 0.25 * static_cast<double>(trial % 5);
        const std::size_t r =
            static_cast<std::size_t>(rng.uniformInt(50));
        SeriesEnvelope env;
        buildEnvelope(y, r, env);
        ASSERT_LE(lbKeogh(x, y, env, p) * LbPruneMargin,
                  ref::dtwDistance(x, y, p))
            << "m=" << m << " n=" << n << " p=" << p << " r=" << r;
    }
}

TEST(LowerBounds, FlatSeriesAndZeroPenalty)
{
    // Degenerate corners: constant series (every E_i zero) and p = 0
    // (length mismatch free). The bounds must stay sound, not just on
    // generic inputs.
    const MetricSeries flat_a(30, 2.0);
    const MetricSeries flat_b(13, 2.0);
    SeriesEnvelope env;
    buildEnvelope(flat_b, 20, env);
    const double exact = ref::dtwDistance(flat_a, flat_b, 0.0);
    EXPECT_LE(lbKim(flat_a, flat_b, 0.0), exact);
    EXPECT_LE(lbKeogh(flat_a, flat_b, env, 0.0), exact);
    EXPECT_DOUBLE_EQ(exact, 0.0);
}

// ----------------------------------------------------- kernel dispatch

TEST(DiagKernel, ScalarBitIdenticalToReference)
{
    stats::Rng rng(404);
    DistanceScratch &scr = threadDistanceScratch();
    for (int trial = 0; trial < 80; ++trial) {
        const std::size_t m =
            1 + static_cast<std::size_t>(rng.uniformInt(90));
        const std::size_t n =
            1 + static_cast<std::size_t>(rng.uniformInt(90));
        const auto x = randomSeries(m, rng);
        const auto y = randomSeries(n, rng);
        const double p = 0.5 * static_cast<double>(trial % 4);
        const double want = ref::dtwDistance(x, y, p);
        const double got = detail::dtwDiagScalar(x.data(), m, y.data(),
                                                 n, p, scr);
        ASSERT_EQ(want, got) << "m=" << m << " n=" << n << " p=" << p;
    }
}

TEST(DiagKernel, Avx2BitIdenticalToScalarWhenAvailable)
{
    if (!detail::dtwAvx2Available())
        GTEST_SKIP() << "host has no AVX2";
    stats::Rng rng(505);
    DistanceScratch &scr = threadDistanceScratch();
    for (int trial = 0; trial < 80; ++trial) {
        const std::size_t m =
            1 + static_cast<std::size_t>(rng.uniformInt(120));
        const std::size_t n =
            1 + static_cast<std::size_t>(rng.uniformInt(120));
        const auto x = randomSeries(m, rng);
        const auto y = randomSeries(n, rng);
        const double p = 0.5 * static_cast<double>(trial % 4);
        const double s = detail::dtwDiagScalar(x.data(), m, y.data(),
                                               n, p, scr);
        const double v = detail::dtwDiagAvx2(x.data(), m, y.data(), n,
                                             p, scr);
        ASSERT_EQ(s, v) << "m=" << m << " n=" << n << " p=" << p;
        ASSERT_EQ(s, ref::dtwDistance(x, y, p));
    }
}

TEST(DiagKernel, DispatcherMatchesReferenceAcrossLengthThreshold)
{
    // dtwDistance routes short series to the rolling kernel and long
    // ones to the diagonal kernels; both sides of the threshold must
    // agree with the reference bitwise.
    stats::Rng rng(606);
    for (std::size_t m : {1u, 2u, 7u, 15u, 16u, 17u, 33u, 64u}) {
        for (std::size_t n : {1u, 9u, 16u, 31u, 64u}) {
            const auto x = randomSeries(m, rng);
            const auto y = randomSeries(n, rng);
            ASSERT_EQ(dtwDistance(x, y, 1.0),
                      ref::dtwDistance(x, y, 1.0))
                << "m=" << m << " n=" << n;
        }
    }
}

// ----------------------------------------------------------- cascade

TEST(Cascade, ExactMatchesReferenceMatrixExactly)
{
    constexpr std::size_t N = 24;
    std::vector<MetricSeries> series;
    for (std::size_t i = 0; i < N; ++i)
        series.push_back(classSeries(40 + i % 16, i % 3, i + 1));
    std::vector<const MetricSeries *> items;
    for (const auto &s : series)
        items.push_back(&s);

    DistanceCascade dc(items.data(), N, 1.0);
    for (std::size_t i = 0; i < N; ++i)
        for (std::size_t j = 0; j < N; ++j)
            ASSERT_EQ(dc.exact(i, j),
                      ref::dtwDistance(series[i], series[j], 1.0))
                << "i=" << i << " j=" << j;
}

TEST(Cascade, AtMostFalseImpliesExactAtLeastCutoff)
{
    constexpr std::size_t N = 20;
    std::vector<MetricSeries> series;
    for (std::size_t i = 0; i < N; ++i)
        series.push_back(classSeries(36 + i % 12, i % 4, i + 11));
    std::vector<const MetricSeries *> items;
    for (const auto &s : series)
        items.push_back(&s);

    stats::Rng rng(707);
    DistanceCascade dc(items.data(), N, 0.7);
    for (int trial = 0; trial < 400; ++trial) {
        const std::size_t i =
            static_cast<std::size_t>(rng.uniformInt(N));
        const std::size_t j =
            static_cast<std::size_t>(rng.uniformInt(N));
        const double exact = ref::dtwDistance(series[i], series[j], 0.7);
        const double cutoff = exact * rng.uniform(0.25, 1.75) + 1e-9;
        double d = std::numeric_limits<double>::quiet_NaN();
        if (dc.atMost(i, j, cutoff, d)) {
            // A true answer is always the exact distance, bitwise.
            ASSERT_EQ(d, exact);
        } else {
            // A false answer must be a sound rejection.
            ASSERT_GE(exact, cutoff);
            ASSERT_TRUE(std::isnan(d)) << "d must be untouched";
        }
    }
}

TEST(Cascade, CheapLowerBoundNeverExceedsExact)
{
    constexpr std::size_t N = 16;
    std::vector<MetricSeries> series;
    for (std::size_t i = 0; i < N; ++i)
        series.push_back(classSeries(30 + i, i % 3, i + 5));
    std::vector<const MetricSeries *> items;
    for (const auto &s : series)
        items.push_back(&s);
    DistanceCascade dc(items.data(), N, 1.3);
    for (std::size_t i = 0; i < N; ++i)
        for (std::size_t j = 0; j < N; ++j) {
            const double lb = dc.cheapLowerBound(i, j);
            ASSERT_LE(lb, ref::dtwDistance(series[i], series[j], 1.3));
        }
}

TEST(Cascade, KMedoidsCascadeBitIdenticalToKMedoids)
{
    constexpr std::size_t N = 48;
    std::vector<MetricSeries> series;
    for (std::size_t i = 0; i < N; ++i)
        series.push_back(classSeries(40 + i % 24, i % 4, i + 21));
    std::vector<const MetricSeries *> items;
    for (const auto &s : series)
        items.push_back(&s);

    for (const double p : {0.0, 1.0}) {
        for (const std::size_t k : {std::size_t{2}, std::size_t{4},
                                    std::size_t{7}}) {
            const auto dm = DistanceMatrix::build(
                N,
                [&](std::size_t i, std::size_t j) {
                    return dtwDistance(series[i], series[j], p);
                },
                1);
            stats::Rng r1(33);
            const auto plain = kMedoids(dm, k, r1);

            DistanceCascade dc(items.data(), N, p);
            stats::Rng r2(33);
            const auto casc = kMedoidsCascade(dc, k, r2);

            ASSERT_EQ(plain.medoids, casc.medoids)
                << "p=" << p << " k=" << k;
            ASSERT_EQ(plain.assignment, casc.assignment)
                << "p=" << p << " k=" << k;
            ASSERT_EQ(plain.totalCost, casc.totalCost)
                << "p=" << p << " k=" << k;
            // The point of the cascade: it must actually prune.
            EXPECT_LT(dc.stats().dpRuns, N * (N - 1) / 2 + N)
                << "p=" << p << " k=" << k;
        }
    }
}

// ---------------------------------------------------- early abandoning

TEST(EarlyAbandon, FiniteResultIsExactInfMeansAtLeastCutoff)
{
    stats::Rng rng(808);
    for (int trial = 0; trial < 150; ++trial) {
        const std::size_t m =
            1 + static_cast<std::size_t>(rng.uniformInt(40));
        const std::size_t n =
            1 + static_cast<std::size_t>(rng.uniformInt(40));
        const auto x = randomSeries(m, rng);
        const auto y = randomSeries(n, rng);
        const double exact = ref::dtwDistance(x, y, 1.0);
        const double cutoff = exact * rng.uniform(0.3, 1.7) + 1e-9;
        const double got = dtwDistanceEarlyAbandon(x, y, 1.0, cutoff);
        if (std::isinf(got))
            ASSERT_GE(exact, cutoff);
        else
            ASSERT_EQ(got, exact);
    }
}

// ------------------------------------------------- parallel byte-ident

TEST(ParallelBuild, ChunkedWorkStealingByteIdenticalAtAnyJobs)
{
    constexpr std::size_t N = 40;
    std::vector<MetricSeries> series;
    stats::Rng rng(909);
    for (std::size_t i = 0; i < N; ++i)
        series.push_back(randomSeries(24 + i % 16, rng));
    const auto cell = [&](std::size_t i, std::size_t j) {
        return dtwDistance(series[i], series[j], 1.0);
    };
    const auto dm1 = DistanceMatrix::build(N, cell, 1);
    for (const unsigned jobs : {2u, 3u, 4u, 8u}) {
        const auto dmj = DistanceMatrix::build(N, cell, jobs);
        for (std::size_t i = 0; i < N; ++i)
            for (std::size_t j = i + 1; j < N; ++j)
                ASSERT_EQ(dm1.at(i, j), dmj.at(i, j))
                    << "jobs=" << jobs << " i=" << i << " j=" << j;
    }
}

// ------------------------------------------------- signature LB prune

TEST(SignaturePrune, IdentifyUnchangedByPrefixPrune)
{
    // The bank's prefix-sum prune must be invisible: identification
    // and confidence over a pruned scan equal a naive full scan.
    stats::Rng rng(111);
    SignatureBank bank(1.0);
    constexpr std::size_t Bank = 64;
    std::vector<MetricSeries> sigs;
    for (std::size_t i = 0; i < Bank; ++i) {
        sigs.push_back(classSeries(20 + i % 10, i % 5, i + 3));
        bank.add(sigs.back(), 1000.0 + static_cast<double>(i),
                 static_cast<int>(i % 5));
    }

    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t which =
            static_cast<std::size_t>(rng.uniformInt(Bank));
        MetricSeries partial(
            sigs[which].begin(),
            sigs[which].begin() +
                static_cast<std::ptrdiff_t>(
                    1 + rng.uniformInt(sigs[which].size())));
        for (auto &v : partial)
            v += rng.uniform(-0.02, 0.02);

        // Naive scan: the exact pre-prune semantics of matchPartial.
        const double norm = static_cast<double>(partial.size());
        std::size_t best = SignatureBank::npos;
        double best_d = std::numeric_limits<double>::infinity();
        double second_d = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < bank.size(); ++i) {
            const auto &sig = bank.entry(i).series;
            const std::size_t common =
                std::min(partial.size(), sig.size());
            double d = 0.0;
            for (std::size_t k = 0; k < common; ++k)
                d += std::abs(partial[k] - sig[k]);
            for (std::size_t k = common; k < partial.size(); ++k)
                d += std::abs(partial[k]);
            d /= norm;
            if (d < best_d) {
                second_d = best_d;
                best_d = d;
                best = i;
            } else if (d < second_d) {
                second_d = d;
            }
        }

        ASSERT_EQ(bank.identify(partial), best);
        const auto id = bank.identifyWithConfidence(partial, 0.0);
        ASSERT_EQ(id.index, best);
        const double want_conf =
            second_d > 0.0 ? (second_d - best_d) / second_d : 0.0;
        ASSERT_EQ(id.confidence, want_conf);
    }
}
