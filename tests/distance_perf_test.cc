/**
 * @file
 * Golden-equivalence suite for the request-differencing fast path:
 * every optimized kernel (flat-buffer DTW, banded DTW, early-abandon
 * DTW, bit-parallel Levenshtein, parallel matrix build) must agree
 * with the preserved pre-optimization reference kernels in
 * rbv::core::ref to the last bit, on randomized inputs and on the
 * degenerate edges (empty, length-1, all-equal). The parallel build
 * identity test doubles as the TSan workload for the worker pool.
 */

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/model/distance.hh"
#include "core/model/distance_ref.hh"
#include "core/model/kmedoids.hh"
#include "stats/rng.hh"

using namespace rbv;
using namespace rbv::core;

namespace {

MetricSeries
randomSeries(stats::Rng &rng, std::size_t max_len)
{
    const std::size_t n = rng.uniformInt(max_len + 1);
    MetricSeries s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back(rng.uniform(0.0, 4.0));
    return s;
}

std::vector<os::Sys>
randomSyscalls(stats::Rng &rng, std::size_t max_len)
{
    const std::size_t n = rng.uniformInt(max_len + 1);
    std::vector<os::Sys> s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back(static_cast<os::Sys>(
            rng.uniformInt(static_cast<std::uint64_t>(os::NumSys))));
    return s;
}

/** Edge-case series the randomized loops may not hit. */
std::vector<MetricSeries>
edgeSeries()
{
    return {
        {},
        {0.0},
        {2.5},
        {1.0, 1.0, 1.0, 1.0, 1.0},
        {3.0, 3.0, 3.0},
        {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0},
    };
}

TEST(DistanceGolden, DtwMatchesReferenceRandomized)
{
    stats::Rng rng(7);
    for (int it = 0; it < 200; ++it) {
        const auto x = randomSeries(rng, 64);
        const auto y = randomSeries(rng, 64);
        for (const double p : {0.0, 0.3, 1.7}) {
            EXPECT_EQ(dtwDistance(x, y, p), ref::dtwDistance(x, y, p))
                << "it=" << it << " p=" << p << " m=" << x.size()
                << " n=" << y.size();
        }
    }
}

TEST(DistanceGolden, DtwMatchesReferenceOnEdges)
{
    for (const auto &x : edgeSeries())
        for (const auto &y : edgeSeries())
            for (const double p : {0.0, 0.5})
                EXPECT_EQ(dtwDistance(x, y, p),
                          ref::dtwDistance(x, y, p));
}

TEST(DistanceGolden, BandedDtwAlwaysExact)
{
    stats::Rng rng(11);
    for (int it = 0; it < 200; ++it) {
        const auto x = randomSeries(rng, 48);
        const auto y = randomSeries(rng, 48);
        for (const double p : {0.0, 0.4, 2.0}) {
            const double exact = ref::dtwDistance(x, y, p);
            for (const std::size_t band : {0u, 1u, 3u, 8u, 64u}) {
                EXPECT_EQ(dtwDistanceBanded(x, y, p, band), exact)
                    << "it=" << it << " p=" << p << " band=" << band
                    << " m=" << x.size() << " n=" << y.size();
            }
        }
    }
}

TEST(DistanceGolden, BandedDtwExactOnEdges)
{
    for (const auto &x : edgeSeries())
        for (const auto &y : edgeSeries())
            for (const std::size_t band : {0u, 2u, 16u})
                EXPECT_EQ(dtwDistanceBanded(x, y, 0.5, band),
                          ref::dtwDistance(x, y, 0.5));
}

TEST(DistanceGolden, EarlyAbandonSoundAndExactWhenFinite)
{
    stats::Rng rng(13);
    constexpr double Inf = std::numeric_limits<double>::infinity();
    int abandoned = 0, finished = 0;
    for (int it = 0; it < 300; ++it) {
        const auto x = randomSeries(rng, 48);
        const auto y = randomSeries(rng, 48);
        const double p = 0.7;
        const double exact = ref::dtwDistance(x, y, p);
        for (const double frac : {0.25, 0.9, 1.1, 4.0}) {
            const double cutoff = exact * frac + 0.01;
            const double got =
                dtwDistanceEarlyAbandon(x, y, p, cutoff);
            if (got == Inf) {
                // Abandoning promises the exact value is >= cutoff.
                EXPECT_GE(exact, cutoff);
                ++abandoned;
            } else {
                EXPECT_EQ(got, exact);
                ++finished;
            }
        }
    }
    // The suite must exercise both outcomes to mean anything.
    EXPECT_GT(abandoned, 0);
    EXPECT_GT(finished, 0);
}

TEST(DistanceGolden, EarlyAbandonBelowCutoffNeverAbandons)
{
    stats::Rng rng(17);
    for (int it = 0; it < 100; ++it) {
        const auto x = randomSeries(rng, 32);
        const auto y = randomSeries(rng, 32);
        const double exact = ref::dtwDistance(x, y, 0.5);
        EXPECT_EQ(dtwDistanceEarlyAbandon(x, y, 0.5, exact + 1.0),
                  exact);
    }
}

TEST(DistanceGolden, LevenshteinMatchesReferenceRandomized)
{
    stats::Rng rng(19);
    for (int it = 0; it < 200; ++it) {
        const auto a = randomSyscalls(rng, 200);
        const auto b = randomSyscalls(rng, 200);
        // max_len 96 < 200 also exercises the subsampling view path.
        for (const std::size_t max_len : {96u, 512u}) {
            EXPECT_EQ(levenshteinDistance(a, b, max_len),
                      ref::levenshteinDistance(a, b, max_len))
                << "it=" << it << " max_len=" << max_len
                << " m=" << a.size() << " n=" << b.size();
        }
    }
}

TEST(DistanceGolden, LevenshteinEdges)
{
    const std::vector<os::Sys> empty;
    const std::vector<os::Sys> one = {static_cast<os::Sys>(3)};
    const std::vector<os::Sys> same(40, static_cast<os::Sys>(5));
    for (const auto *a : {&empty, &one, &same})
        for (const auto *b : {&empty, &one, &same})
            EXPECT_EQ(levenshteinDistance(*a, *b),
                      ref::levenshteinDistance(*a, *b, 512));
}

TEST(DistanceGolden, LevenshteinWideAlphabetFallsBackToDp)
{
    // Symbols >= 64 cannot be packed into the bit-parallel alphabet;
    // the kernel must detect them and take the scalar DP, which the
    // reference also runs.
    stats::Rng rng(23);
    for (int it = 0; it < 50; ++it) {
        std::vector<os::Sys> a, b;
        for (int i = 0; i < 30 + it % 7; ++i)
            a.push_back(static_cast<os::Sys>(
                60 + rng.uniformInt(100)));
        for (int i = 0; i < 25 + it % 5; ++i)
            b.push_back(static_cast<os::Sys>(
                60 + rng.uniformInt(100)));
        EXPECT_EQ(levenshteinDistance(a, b),
                  ref::levenshteinDistance(a, b, 512));
    }
}

TEST(DistanceGolden, LevenshteinLongBlockedPattern)
{
    // > 64 pattern rows forces the multi-block Myers carry chain.
    stats::Rng rng(29);
    std::vector<os::Sys> a, b;
    for (std::size_t i = 0; i < 300; ++i)
        a.push_back(static_cast<os::Sys>(
            rng.uniformInt(static_cast<std::uint64_t>(os::NumSys))));
    for (std::size_t i = 0; i < 290; ++i)
        b.push_back(static_cast<os::Sys>(
            rng.uniformInt(static_cast<std::uint64_t>(os::NumSys))));
    EXPECT_EQ(levenshteinDistance(a, b, 512),
              ref::levenshteinDistance(a, b, 512));
}

TEST(DistanceMatrixParallel, ByteIdenticalAtAnyJobCount)
{
    stats::Rng rng(31);
    std::vector<MetricSeries> series;
    for (int i = 0; i < 24; ++i)
        series.push_back(randomSeries(rng, 40));
    const auto cell = [&](std::size_t i, std::size_t j) {
        return dtwDistance(series[i], series[j], 0.6);
    };
    const std::size_t n = series.size();

    const auto reference = ref::distanceMatrixBuild(
        n, [&](std::size_t i, std::size_t j) {
            return ref::dtwDistance(series[i], series[j], 0.6);
        });
    // jobs = 0 (all cores) is the TSan-relevant configuration: many
    // workers race to claim rows while the main thread waits.
    for (const int jobs : {1, 2, 4, 0}) {
        const auto dm = DistanceMatrix::build(n, cell, jobs);
        ASSERT_EQ(dm.size(), n);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                ASSERT_EQ(dm.at(i, j), reference.at(i, j))
                    << "jobs=" << jobs << " i=" << i << " j=" << j;
    }
}

TEST(DistanceMatrixParallel, PackedStorageIsSymmetricAndHalfSized)
{
    DistanceMatrix dm(5);
    dm.set(1, 4, 2.5);
    dm.set(4, 2, 7.0);
    EXPECT_EQ(dm.at(1, 4), 2.5);
    EXPECT_EQ(dm.at(4, 1), 2.5);
    EXPECT_EQ(dm.at(2, 4), 7.0);
    EXPECT_EQ(dm.at(3, 3), 0.0);
    EXPECT_EQ(dm.packed().size(), 10u); // 5*4/2, not 25
}

TEST(DistanceMatrixParallel, TinyAndEmptyMatrices)
{
    const auto none = DistanceMatrix::build(
        0, [](std::size_t, std::size_t) { return 1.0; }, 4);
    EXPECT_EQ(none.size(), 0u);
    const auto single = DistanceMatrix::build(
        1, [](std::size_t, std::size_t) { return 1.0; }, 4);
    EXPECT_EQ(single.at(0, 0), 0.0);
    const auto pair = DistanceMatrix::build(
        2, [](std::size_t i, std::size_t j) {
            return static_cast<double>(10 * i + j);
        },
        4);
    EXPECT_EQ(pair.at(0, 1), 1.0);
    EXPECT_EQ(pair.at(1, 0), 1.0);
}

} // namespace
