/**
 * @file
 * Tests for the request differencing measures (Sec. 4.1).
 */

#include <gtest/gtest.h>

#include "core/model/distance.hh"

using namespace rbv;
using namespace rbv::core;

// ------------------------------------------------------------------ L1

TEST(L1, IdenticalSeriesIsZero)
{
    const MetricSeries x = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(l1Distance(x, x, 5.0), 0.0);
}

TEST(L1, ElementwiseSum)
{
    EXPECT_DOUBLE_EQ(l1Distance({1.0, 2.0}, {2.0, 4.0}, 5.0), 3.0);
}

TEST(L1, LengthPenaltyApplied)
{
    EXPECT_DOUBLE_EQ(l1Distance({1.0, 2.0, 9.0, 9.0}, {1.0, 2.0}, 5.0),
                     10.0);
}

TEST(L1, Symmetric)
{
    const MetricSeries x = {1.0, 5.0, 2.0};
    const MetricSeries y = {2.0, 2.0};
    EXPECT_DOUBLE_EQ(l1Distance(x, y, 3.0), l1Distance(y, x, 3.0));
}

TEST(L1, TriangleInequalityOnEqualLengths)
{
    stats::Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        MetricSeries a, b, c;
        for (int i = 0; i < 8; ++i) {
            a.push_back(rng.uniform());
            b.push_back(rng.uniform());
            c.push_back(rng.uniform());
        }
        EXPECT_LE(l1Distance(a, c, 1.0),
                  l1Distance(a, b, 1.0) + l1Distance(b, c, 1.0) +
                      1e-12);
    }
}

TEST(L1, OverestimatesShiftedSeries)
{
    // The motivating case for DTW (Fig. 6): a shifted copy looks far
    // under L1.
    MetricSeries x, y;
    for (int i = 0; i < 40; ++i) {
        x.push_back(i % 10 == 5 ? 5.0 : 1.0);
        y.push_back(i % 10 == 6 ? 5.0 : 1.0); // peaks shifted by 1
    }
    EXPECT_GT(l1Distance(x, y, 4.0), 10.0);
}

// ----------------------------------------------------------------- DTW

TEST(Dtw, IdenticalSeriesIsZero)
{
    const MetricSeries x = {1.0, 3.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(dtwDistance(x, x), 0.0);
}

TEST(Dtw, HandComputedSmallCase)
{
    // x = [1, 2], y = [1, 1, 2]:
    // warp path (0,0) (0,1) (1,2): cost 0 + 0 + 0 = 0.
    EXPECT_DOUBLE_EQ(dtwDistance({1.0, 2.0}, {1.0, 1.0, 2.0}), 0.0);
    // With asynchrony penalty 0.5 the extra step costs 0.5.
    EXPECT_DOUBLE_EQ(dtwDistance({1.0, 2.0}, {1.0, 1.0, 2.0}, 0.5),
                     0.5);
}

TEST(Dtw, AbsorbsTimeShift)
{
    MetricSeries x, y;
    for (int i = 0; i < 40; ++i) {
        x.push_back(i % 10 == 5 ? 5.0 : 1.0);
        y.push_back(i % 10 == 6 ? 5.0 : 1.0);
    }
    // DTW aligns the shifted peaks at no cost.
    EXPECT_LT(dtwDistance(x, y), l1Distance(x, y, 4.0) * 0.2);
}

TEST(Dtw, NeverExceedsL1OnEqualLengths)
{
    stats::Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        MetricSeries a, b;
        for (int i = 0; i < 12; ++i) {
            a.push_back(rng.uniform(0.0, 4.0));
            b.push_back(rng.uniform(0.0, 4.0));
        }
        EXPECT_LE(dtwDistance(a, b), l1Distance(a, b, 0.0) + 1e-9);
    }
}

TEST(Dtw, PenaltyMonotone)
{
    stats::Rng rng(11);
    MetricSeries a, b;
    for (int i = 0; i < 15; ++i)
        a.push_back(rng.uniform(0.0, 4.0));
    for (int i = 0; i < 10; ++i)
        b.push_back(rng.uniform(0.0, 4.0));
    double prev = dtwDistance(a, b, 0.0);
    for (double pen : {0.5, 1.0, 2.0, 4.0}) {
        const double d = dtwDistance(a, b, pen);
        EXPECT_GE(d, prev - 1e-12);
        prev = d;
    }
}

TEST(Dtw, PenaltyPreventsNoCostCollapse)
{
    // Plain DTW can warp a constant onto anything with matching
    // extremes; the asynchrony penalty restores discrimination.
    const MetricSeries flat(20, 1.0);
    MetricSeries spiky;
    for (int i = 0; i < 20; ++i)
        spiky.push_back(i % 2 ? 1.0 : 1.0001);
    MetricSeries longer(60, 1.0);
    // Plain DTW thinks `flat` and `longer` are identical.
    EXPECT_NEAR(dtwDistance(flat, longer), 0.0, 1e-9);
    // With a penalty, the 40 asynchronous steps cost.
    EXPECT_NEAR(dtwDistance(flat, longer, 0.5), 20.0, 1e-9);
    (void)spiky;
}

TEST(Dtw, Symmetric)
{
    stats::Rng rng(13);
    MetricSeries a, b;
    for (int i = 0; i < 10; ++i)
        a.push_back(rng.uniform());
    for (int i = 0; i < 14; ++i)
        b.push_back(rng.uniform());
    EXPECT_NEAR(dtwDistance(a, b, 0.3), dtwDistance(b, a, 0.3), 1e-9);
}

TEST(Dtw, EmptyInputs)
{
    EXPECT_DOUBLE_EQ(dtwDistance({}, {}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(dtwDistance({1.0}, {}, 0.5), 0.5);
}

// ----------------------------------------------------------- AvgMetric

TEST(AvgMetric, MeanDifference)
{
    EXPECT_DOUBLE_EQ(avgMetricDistance({1.0, 3.0}, {4.0, 6.0}), 3.0);
}

TEST(AvgMetric, BlindToPatternShape)
{
    // Same mean, entirely different shapes: distance 0. This is the
    // weakness fine-grained signatures fix.
    EXPECT_DOUBLE_EQ(avgMetricDistance({0.0, 4.0}, {2.0, 2.0}), 0.0);
}

// ---------------------------------------------------------- Levenshtein

TEST(Levenshtein, ClassicCases)
{
    using S = std::vector<os::Sys>;
    const S kitten = {os::Sys::read, os::Sys::open, os::Sys::stat};
    EXPECT_DOUBLE_EQ(levenshteinDistance(kitten, kitten), 0.0);
    EXPECT_DOUBLE_EQ(levenshteinDistance(kitten, {}), 3.0);
    EXPECT_DOUBLE_EQ(levenshteinDistance({}, kitten), 3.0);

    // One substitution.
    const S sub = {os::Sys::read, os::Sys::close, os::Sys::stat};
    EXPECT_DOUBLE_EQ(levenshteinDistance(kitten, sub), 1.0);

    // One insertion.
    const S ins = {os::Sys::read, os::Sys::open, os::Sys::write,
                   os::Sys::stat};
    EXPECT_DOUBLE_EQ(levenshteinDistance(kitten, ins), 1.0);
}

TEST(Levenshtein, SubsamplingKeepsIdenticalAtZero)
{
    std::vector<os::Sys> big;
    for (int i = 0; i < 5000; ++i)
        big.push_back(static_cast<os::Sys>(i % 5));
    EXPECT_DOUBLE_EQ(levenshteinDistance(big, big, 256), 0.0);
}

TEST(Levenshtein, BoundedByMaxLen)
{
    std::vector<os::Sys> a(10000, os::Sys::read);
    std::vector<os::Sys> b(10000, os::Sys::write);
    EXPECT_LE(levenshteinDistance(a, b, 128), 128.0);
}

// --------------------------------------------------------- lengthPenalty

TEST(LengthPenalty, NearPeakDifference)
{
    // Values in {0, 10}: the 99th percentile of |v1 - v2| is 10.
    std::vector<MetricSeries> series;
    for (int i = 0; i < 10; ++i)
        series.push_back(MetricSeries{0.0, 10.0});
    stats::Rng rng(17);
    const double p = lengthPenalty(series, rng, 0.99, 5000);
    EXPECT_DOUBLE_EQ(p, 10.0);
}

TEST(LengthPenalty, ZeroForConstantData)
{
    std::vector<MetricSeries> series(4, MetricSeries(8, 2.0));
    stats::Rng rng(19);
    EXPECT_DOUBLE_EQ(lengthPenalty(series, rng), 0.0);
}

TEST(LengthPenalty, EmptyInputSafe)
{
    stats::Rng rng(23);
    EXPECT_DOUBLE_EQ(lengthPenalty({}, rng), 0.0);
    EXPECT_DOUBLE_EQ(lengthPenalty({MetricSeries{}}, rng), 0.0);
}

TEST(LengthPenalty, ZeroSamplePairsRequested)
{
    std::vector<MetricSeries> series(3, MetricSeries{0.0, 10.0});
    stats::Rng rng(29);
    EXPECT_DOUBLE_EQ(lengthPenalty(series, rng, 0.9, 0), 0.0);
}

TEST(MeasureNames, Defined)
{
    EXPECT_STREQ(measureName(Measure::DtwAsyncPenalty),
                 "DTW+async penalty");
    EXPECT_STREQ(measureName(Measure::L1), "L1 distance");
}
