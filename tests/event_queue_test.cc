/**
 * @file
 * Unit tests for the discrete event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace rbv::sim;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(10, [&order, i] { order.push_back(i); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue eq;
    bool fired = false;
    const EventId id = eq.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(eq.cancel(id));
    eq.runUntil(100);
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceIsFalse)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(50, [&] { ++count; });
    eq.runUntil(20);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 20u);
    eq.runUntil(100);
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, ScheduleFromWithinEvent)
{
    EventQueue eq;
    std::vector<Tick> fired;
    eq.schedule(10, [&] {
        fired.push_back(eq.now());
        eq.scheduleIn(5, [&] { fired.push_back(eq.now()); });
    });
    eq.runUntil(100);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], 10u);
    EXPECT_EQ(fired[1], 15u);
}

TEST(EventQueue, ScheduleAtCurrentTickFiresThisRun)
{
    EventQueue eq;
    bool inner = false;
    eq.schedule(10, [&] {
        eq.schedule(eq.now(), [&] { inner = true; });
    });
    eq.runUntil(100);
    EXPECT_TRUE(inner);
}

TEST(EventQueue, RequestStopHaltsProcessing)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] {
        ++count;
        eq.requestStop();
    });
    eq.schedule(20, [&] { ++count; });
    eq.runUntil(100);
    EXPECT_EQ(count, 1);
    // A later runUntil resumes.
    eq.runUntil(100);
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
    eq.schedule(5, [] {});
    EXPECT_TRUE(eq.runOne());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, SizeAndEmptyTrackPending)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    const EventId a = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.size(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.size(), 1u);
    eq.runUntil(10);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, FiredCountExcludesCancelled)
{
    EventQueue eq;
    const EventId a = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    eq.cancel(a);
    eq.runUntil(10);
    EXPECT_EQ(eq.firedCount(), 1u);
}

TEST(EventQueue, ManyEventsStressOrder)
{
    EventQueue eq;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 1000; ++i) {
        const Tick when = (i * 7919) % 1000;
        eq.schedule(when, [&, when] {
            if (when < last)
                monotonic = false;
            last = when;
        });
    }
    eq.runUntil(2000);
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(eq.firedCount(), 1000u);
}
