/**
 * @file
 * Tests for the experiment-harness data reductions and the CLI
 * parser.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exp/analysis.hh"
#include "exp/cli.hh"
#include "exp/trace.hh"

using namespace rbv;
using namespace rbv::exp;

namespace {

RequestRecord
makeRecord(double ins, double cycles, double refs, double misses)
{
    RequestRecord r;
    r.totals.instructions = ins;
    r.totals.cycles = cycles;
    r.totals.l2Refs = refs;
    r.totals.l2Misses = misses;
    return r;
}

/** Append one period to a record's timeline. */
void
addPeriod(RequestRecord &r, double ins, double cycles,
          double refs = 0.0, double misses = 0.0)
{
    core::Period p;
    p.instructions = ins;
    p.cycles = cycles;
    p.l2Refs = refs;
    p.l2Misses = misses;
    r.timeline.periods.push_back(p);
}

} // namespace

// ------------------------------------------------------------- Cli

TEST(Cli, ParsesSpaceAndEqualsForms)
{
    const char *argv[] = {"prog", "--requests", "42", "--seed=7",
                          "--csv"};
    Cli cli(5, const_cast<char **>(argv));
    EXPECT_EQ(cli.getInt("requests", 0), 42);
    EXPECT_EQ(cli.getU64("seed", 0), 7u);
    EXPECT_TRUE(cli.has("csv"));
    EXPECT_FALSE(cli.has("missing"));
    EXPECT_EQ(cli.getInt("missing", 9), 9);
}

TEST(Cli, DoubleAndStringValues)
{
    const char *argv[] = {"prog", "--period", "2.5", "--app", "tpch"};
    Cli cli(5, const_cast<char **>(argv));
    EXPECT_DOUBLE_EQ(cli.getDouble("period", 0.0), 2.5);
    EXPECT_EQ(cli.getStr("app", "x"), "tpch");
    EXPECT_EQ(cli.getStr("other", "def"), "def");
}

TEST(Cli, BooleanFollowedByFlag)
{
    const char *argv[] = {"prog", "--csv", "--n", "3"};
    Cli cli(4, const_cast<char **>(argv));
    EXPECT_TRUE(cli.has("csv"));
    EXPECT_EQ(cli.getInt("n", 0), 3);
}

TEST(Cli, GetBoolForms)
{
    const char *argv[] = {"prog", "--bare",     "--on=true",
                          "--off", "no",        "--zero=0",
                          "--one", "1"};
    Cli cli(8, const_cast<char **>(argv));
    EXPECT_TRUE(cli.getBool("bare", false));
    EXPECT_TRUE(cli.getBool("on", false));
    EXPECT_FALSE(cli.getBool("off", true));
    EXPECT_FALSE(cli.getBool("zero", true));
    EXPECT_TRUE(cli.getBool("one", false));
    EXPECT_TRUE(cli.getBool("absent", true));
    EXPECT_FALSE(cli.getBool("absent", false));
}

TEST(Cli, ReportsUnknownFlags)
{
    const char *argv[] = {"prog", "--seed", "1", "--typo", "5"};
    Cli cli(5, const_cast<char **>(argv));
    const auto bad = cli.unknown({"seed", "requests"});
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_EQ(bad[0], "typo");
    EXPECT_TRUE(cli.unknown({"seed", "typo"}).empty());
}

// -------------------------------------------------------- overall/CoV

TEST(Analysis, OverallMetricIsRatioOfTotals)
{
    std::vector<RequestRecord> recs;
    recs.push_back(makeRecord(100, 300, 10, 5));
    recs.push_back(makeRecord(300, 300, 30, 5));
    // CPI = 600 / 400 = 1.5 (not the mean of 3.0 and 1.0).
    EXPECT_DOUBLE_EQ(overallMetric(recs, core::Metric::Cpi), 1.5);
    EXPECT_DOUBLE_EQ(overallMetric(recs, core::Metric::L2MissRatio),
                     0.25);
}

TEST(Analysis, MetricWeightsFollowDenominators)
{
    sim::CounterSnapshot c;
    c.instructions = 100;
    c.l2Refs = 40;
    EXPECT_DOUBLE_EQ(metricWeight(c, core::Metric::Cpi), 100.0);
    EXPECT_DOUBLE_EQ(metricWeight(c, core::Metric::L2RefsPerIns),
                     100.0);
    EXPECT_DOUBLE_EQ(metricWeight(c, core::Metric::L2MissRatio),
                     40.0);
}

TEST(Analysis, CovZeroForUniformRequests)
{
    std::vector<RequestRecord> recs;
    for (int i = 0; i < 4; ++i) {
        auto r = makeRecord(100, 200, 0, 0);
        addPeriod(r, 50, 100);
        addPeriod(r, 50, 100);
        recs.push_back(std::move(r));
    }
    const auto cov = covInterIntra(recs, core::Metric::Cpi);
    EXPECT_NEAR(cov.inter, 0.0, 1e-12);
    EXPECT_NEAR(cov.withIntra, 0.0, 1e-12);
}

TEST(Analysis, IntraCovSeesWithinRequestVariation)
{
    // Two requests with equal totals (inter CoV 0) but strongly
    // varying halves (intra CoV > 0) -- the Sec. 2.3 phenomenon.
    std::vector<RequestRecord> recs;
    for (int i = 0; i < 2; ++i) {
        auto r = makeRecord(200, 400, 0, 0);
        addPeriod(r, 100, 100); // CPI 1
        addPeriod(r, 100, 300); // CPI 3
        recs.push_back(std::move(r));
    }
    const auto cov = covInterIntra(recs, core::Metric::Cpi);
    EXPECT_NEAR(cov.inter, 0.0, 1e-12);
    EXPECT_NEAR(cov.withIntra, 0.5, 1e-12);
}

TEST(Analysis, EmptyRecordsSafe)
{
    const std::vector<RequestRecord> recs;
    const auto cov = covInterIntra(recs, core::Metric::Cpi);
    EXPECT_EQ(cov.inter, 0.0);
    EXPECT_EQ(cov.withIntra, 0.0);
    EXPECT_EQ(medianInstructions(recs), 0.0);
}

// --------------------------------------------------------- gap CDF

TEST(Analysis, GapCdfLengthBiased)
{
    // One gap of 10 and one of 90 (time units). From an arbitrary
    // instant, P(next <= 10) = (10 + 10) / 100 = 0.2.
    std::vector<SyscallGap> gaps = {{10.0, 1.0}, {90.0, 9.0}};
    const auto cdf = syscallGapCdf(gaps, {10.0, 90.0, 1000.0}, true);
    EXPECT_NEAR(cdf[0], 0.2, 1e-12);
    EXPECT_NEAR(cdf[1], 1.0, 1e-12);
    EXPECT_NEAR(cdf[2], 1.0, 1e-12);
}

TEST(Analysis, GapCdfInstructionDomain)
{
    std::vector<SyscallGap> gaps = {{10.0, 100.0}, {10.0, 300.0}};
    const auto cdf = syscallGapCdf(gaps, {100.0}, false);
    EXPECT_NEAR(cdf[0], 0.5, 1e-12); // (100 + 100) / 400
}

TEST(Analysis, GapCdfEmptySafe)
{
    const auto cdf = syscallGapCdf({}, {10.0}, true);
    EXPECT_EQ(cdf[0], 0.0);
}

// ------------------------------------------------- per-request extract

TEST(Analysis, RequestExtractionHelpers)
{
    std::vector<RequestRecord> recs;
    recs.push_back(makeRecord(100, 150, 0, 0));
    recs.push_back(makeRecord(100, 250, 0, 0));
    const auto cpis = requestCpis(recs);
    EXPECT_DOUBLE_EQ(cpis[0], 1.5);
    EXPECT_DOUBLE_EQ(cpis[1], 2.5);
    const auto cpu = requestCpuCycles(recs);
    EXPECT_DOUBLE_EQ(cpu[0], 150.0);
}

TEST(Analysis, PeakCpiUsesTimelineQuantile)
{
    auto r = makeRecord(300, 600, 0, 0);
    for (int i = 0; i < 9; ++i)
        addPeriod(r, 10, 10); // CPI 1
    addPeriod(r, 10, 90);     // CPI 9 spike
    std::vector<RequestRecord> recs;
    recs.push_back(std::move(r));
    const auto peak = requestPeakCpis(recs, 0.90);
    EXPECT_GT(peak[0], 1.0);
    // Falls back to totals CPI when the timeline is empty.
    std::vector<RequestRecord> bare;
    bare.push_back(makeRecord(100, 200, 0, 0));
    EXPECT_DOUBLE_EQ(requestPeakCpis(bare)[0], 2.0);
}

TEST(Analysis, DefaultBinScalesWithMedianLength)
{
    std::vector<RequestRecord> recs;
    recs.push_back(makeRecord(6.0e6, 1, 0, 0));
    recs.push_back(makeRecord(6.0e6, 1, 0, 0));
    EXPECT_DOUBLE_EQ(defaultBinIns(recs, 60), 1.0e5);
    // Floors at 1000 instructions.
    std::vector<RequestRecord> tiny;
    tiny.push_back(makeRecord(100, 1, 0, 0));
    EXPECT_DOUBLE_EQ(defaultBinIns(tiny, 60), 1000.0);
}

TEST(Analysis, MissesQuantileOverPeriods)
{
    std::vector<RequestRecord> recs;
    auto r = makeRecord(0, 0, 0, 0);
    for (int i = 1; i <= 10; ++i)
        addPeriod(r, 100, 100, 10, static_cast<double>(i));
    recs.push_back(std::move(r));
    // misses/ins of periods: 0.01 .. 0.10.
    EXPECT_NEAR(missesPerInsQuantile(recs, 0.5), 0.055, 1e-12);
    EXPECT_NEAR(missesPerInsQuantile(recs, 1.0), 0.10, 1e-12);
}

// ------------------------------------------------------------- trace

namespace {

RequestRecord
tracedRecord()
{
    RequestRecord r;
    r.id = 3;
    r.className = "t.cls";
    r.classId = 7;
    r.totals.instructions = 1000;
    r.totals.cycles = 2000;
    r.totals.l2Refs = 20;
    r.totals.l2Misses = 4;
    r.injected = 100;
    r.completed = 2300;
    r.syscalls = {os::Sys::read, os::Sys::write};
    core::Period p;
    p.instructions = 500;
    p.cycles = 900;
    p.l2Refs = 10;
    p.l2Misses = 2;
    p.wallStart = 120;
    p.trigger = core::SampleTrigger::Syscall;
    r.timeline.periods.push_back(p);
    p.wallStart = 1100;
    p.cycles = 1100;
    p.trigger = core::SampleTrigger::Interrupt;
    r.timeline.periods.push_back(p);
    return r;
}

std::size_t
countLines(const std::string &s)
{
    std::size_t n = 0;
    for (char c : s)
        n += c == '\n';
    return n;
}

} // namespace

TEST(Trace, RecordsCsvHasHeaderAndRow)
{
    std::ostringstream os;
    writeRecordsCsv(os, {tracedRecord()});
    const std::string out = os.str();
    EXPECT_EQ(countLines(out), 2u);
    EXPECT_NE(out.find("request,class,class_id"), std::string::npos);
    EXPECT_NE(out.find("3,t.cls,7,1000,2000,20,4,2,"),
              std::string::npos);
    // latency = completed - injected
    EXPECT_NE(out.find(",2200,"), std::string::npos);
}

TEST(Trace, TimelinesCsvOneRowPerPeriod)
{
    std::ostringstream os;
    writeTimelinesCsv(os, {tracedRecord()});
    const std::string out = os.str();
    EXPECT_EQ(countLines(out), 3u);
    EXPECT_NE(out.find("syscall"), std::string::npos);
    EXPECT_NE(out.find("interrupt"), std::string::npos);
}

TEST(Trace, TimelinesCsvSkipsEmptyPeriods)
{
    auto r = tracedRecord();
    core::Period empty;
    r.timeline.periods.push_back(empty);
    std::ostringstream os;
    writeTimelinesCsv(os, {r});
    EXPECT_EQ(countLines(os.str()), 3u);
}

TEST(Trace, SeriesCsvBins)
{
    std::ostringstream os;
    writeSeriesCsv(os, {tracedRecord()}, 500.0);
    // 1000 instructions / 500-ins bins -> 2 rows + header.
    EXPECT_EQ(countLines(os.str()), 3u);
}
