/**
 * @file
 * Fault-injection layer tests: plan parsing, the zero-cost-dormant
 * guarantee (a zero-probability plan is result-identical to no plan),
 * injection-log determinism across --jobs levels, per-injector effect
 * plus graceful degradation, the runner's job-fault contract, and the
 * ground-truth ranking evaluator.
 */

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/runner.hh"
#include "exp/scenario.hh"
#include "fi/eval.hh"
#include "fi/injection.hh"
#include "fi/plan.hh"

using namespace rbv;
using namespace rbv::exp;

namespace {

/** A tiny but representative scenario (TPCC, 2 cores). */
ScenarioConfig
smallCfg()
{
    ScenarioConfig c;
    c.app = wl::App::Tpcc;
    c.requests = 30;
    c.warmup = 3;
    c.numCores = 2;
    c.seed = 11;
    return c;
}

ScenarioConfig
withPlan(const fi::FaultPlan &plan)
{
    ScenarioConfig c = smallCfg();
    c.faults = std::make_shared<const fi::FaultPlan>(plan);
    return c;
}

/** Field-wise equality of two scenario runs. */
void
expectSameRun(const ScenarioResult &a, const ScenarioResult &b)
{
    EXPECT_EQ(a.wallCycles, b.wallCycles);
    EXPECT_EQ(a.busyCycles, b.busyCycles);
    EXPECT_EQ(a.samplerStats.totalSamples(),
              b.samplerStats.totalSamples());
    EXPECT_EQ(a.samplerStats.overheadCycles,
              b.samplerStats.overheadCycles);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        const RequestRecord &x = a.records[i];
        const RequestRecord &y = b.records[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.totals.cycles, y.totals.cycles);
        EXPECT_EQ(x.totals.instructions, y.totals.instructions);
        EXPECT_EQ(x.totals.l2Refs, y.totals.l2Refs);
        EXPECT_EQ(x.totals.l2Misses, y.totals.l2Misses);
        EXPECT_EQ(x.timeline.periods.size(),
                  y.timeline.periods.size());
    }
}

} // namespace

// ------------------------------------------------------ plan parsing

TEST(FaultPlan, ParsesAndRoundTrips)
{
    fi::FaultPlan plan;
    std::string err;
    ASSERT_TRUE(fi::FaultPlan::parse(
        "irq-drop(p=0.2); req-stuck(p=0.05, mult=4)", plan, err))
        << err;
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.specs()[0].kind, fi::FaultKind::IrqDrop);
    EXPECT_DOUBLE_EQ(plan.specs()[0].param("p", 0.0), 0.2);
    EXPECT_EQ(plan.specs()[1].kind, fi::FaultKind::ReqStuck);
    EXPECT_DOUBLE_EQ(plan.specs()[1].param("mult", 0.0), 4.0);

    // summary() is re-parseable and stable under a round trip.
    fi::FaultPlan again;
    ASSERT_TRUE(fi::FaultPlan::parse(plan.summary(), again, err))
        << err;
    EXPECT_EQ(again.summary(), plan.summary());
}

TEST(FaultPlan, RejectsTyposInsteadOfInjectingNothing)
{
    fi::FaultPlan plan;
    std::string err;
    EXPECT_FALSE(fi::FaultPlan::parse("irq-dorp(p=0.2)", plan, err));
    EXPECT_NE(err.find("unknown fault"), std::string::npos);
    EXPECT_FALSE(fi::FaultPlan::parse("irq-drop(q=0.2)", plan, err));
    EXPECT_NE(err.find("no parameter"), std::string::npos);
    EXPECT_FALSE(fi::FaultPlan::parse("irq-drop(p=0.2", plan, err));
    EXPECT_NE(err.find("missing ')'"), std::string::npos);
    EXPECT_FALSE(fi::FaultPlan::parse("", plan, err));
    EXPECT_FALSE(fi::FaultPlan::parse("irq-drop(p)", plan, err));
}

TEST(FaultPlan, LayerPredicates)
{
    fi::FaultPlan sim_only;
    sim_only.add(fi::FaultKind::IrqDrop, {{"p", 0.1}});
    EXPECT_TRUE(sim_only.hasScenarioFaults());
    EXPECT_FALSE(sim_only.hasJobFaults());

    fi::FaultPlan job_only;
    job_only.add(fi::FaultKind::JobCrash, {{"p", 1.0}});
    EXPECT_FALSE(job_only.hasScenarioFaults());
    EXPECT_TRUE(job_only.hasJobFaults());

    fi::FaultPlan cluster_only;
    cluster_only.add(fi::FaultKind::NodeCrash, {{"node", 1.0}});
    EXPECT_FALSE(cluster_only.hasScenarioFaults());
    EXPECT_FALSE(cluster_only.hasJobFaults());
    EXPECT_TRUE(cluster_only.hasClusterFaults());
    EXPECT_FALSE(sim_only.hasClusterFaults());
    EXPECT_TRUE(fi::isClusterFault(fi::FaultKind::LinkPartition));
    EXPECT_FALSE(fi::isClusterFault(fi::FaultKind::IrqDrop));
}

TEST(FaultPlan, ClusterKindsParseAndRejectTypos)
{
    fi::FaultPlan plan;
    std::string err;
    ASSERT_TRUE(fi::FaultPlan::parse(
        "node-crash(node=1,at-ms=20); "
        "node-degrade(node=3,from-ms=10,for-ms=100,mult=6); "
        "link-drop(node=3,p=0.05); "
        "link-delay(node=-1,p=0.5,add-us=200); "
        "link-partition(a=0,b=1,from-ms=5,for-ms=30)",
        plan, err))
        << err;
    ASSERT_EQ(plan.size(), 5u);
    EXPECT_EQ(plan.specs()[0].kind, fi::FaultKind::NodeCrash);
    EXPECT_DOUBLE_EQ(plan.specs()[0].param("at-ms", 0.0), 20.0);
    EXPECT_EQ(plan.specs()[4].kind, fi::FaultKind::LinkPartition);
    EXPECT_DOUBLE_EQ(plan.specs()[4].param("b", -1.0), 1.0);

    fi::FaultPlan again;
    ASSERT_TRUE(fi::FaultPlan::parse(plan.summary(), again, err))
        << err;
    EXPECT_EQ(again.summary(), plan.summary());

    EXPECT_FALSE(
        fi::FaultPlan::parse("node-crsh(node=1)", plan, err));
    EXPECT_NE(err.find("unknown fault"), std::string::npos);
    EXPECT_FALSE(
        fi::FaultPlan::parse("link-drop(prob=0.1)", plan, err));
    EXPECT_NE(err.find("no parameter"), std::string::npos);
}

TEST(UnitIntervalHash, DeterministicAndBounded)
{
    for (std::uint64_t id = 0; id < 64; ++id) {
        const double u = fi::unitIntervalHash(7, 0x51, id);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_EQ(u, fi::unitIntervalHash(7, 0x51, id));
    }
    // Different salts give different lotteries.
    EXPECT_NE(fi::unitIntervalHash(7, 0x51, 3),
              fi::unitIntervalHash(7, 0x52, 3));
}

// ------------------------------------------------ dormancy guarantee

TEST(Dormancy, ZeroProbabilityPlanIsIdenticalToNoPlan)
{
    // The wiring is active (the session attaches, the sampler calls
    // into it) but every injector short-circuits before consuming
    // randomness: results must match the no-plan run field-wise.
    fi::FaultPlan plan;
    plan.add(fi::FaultKind::IrqDrop, {{"p", 0.0}})
        .add(fi::FaultKind::CtrCorrupt, {{"p", 0.0}})
        .add(fi::FaultKind::ReqStuck, {{"p", 0.0}})
        .add(fi::FaultKind::SysStall, {{"p", 0.0}})
        .add(fi::FaultKind::CtxLoss, {{"p", 0.0}});

    const ScenarioResult clean = runScenario(smallCfg());
    const ScenarioResult dormant = runScenario(withPlan(plan));
    expectSameRun(clean, dormant);
    EXPECT_TRUE(dormant.injections.empty());
    EXPECT_TRUE(clean.injections.empty());
}

// ----------------------------------------- injection-log determinism

TEST(Determinism, InjectionLogIdenticalAcrossJobsLevels)
{
    fi::FaultPlan plan;
    plan.add(fi::FaultKind::IrqDrop, {{"p", 0.3}})
        .add(fi::FaultKind::ReqStuck, {{"p", 0.3}, {"mult", 3.0}})
        .add(fi::FaultKind::SysStall,
             {{"p", 0.1}, {"cycles", 50000.0}})
        .add(fi::FaultKind::CtxLoss, {{"p", 0.2}});

    ScenarioGrid grid(withPlan(plan));
    grid.replicates(2);
    const auto jobs = grid.jobs();

    RunnerOptions serial;
    serial.jobs = 1;
    serial.progress = false;
    RunnerOptions parallel;
    parallel.jobs = 8;
    parallel.progress = false;

    const auto a = ParallelRunner(serial).run(jobs);
    const auto b = ParallelRunner(parallel).run(jobs);
    ASSERT_EQ(a.size(), b.size());
    bool any = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("job " + a[i].key);
        EXPECT_EQ(fi::formatLog(a[i].result.injections),
                  fi::formatLog(b[i].result.injections));
        any = any || !a[i].result.injections.empty();
    }
    EXPECT_TRUE(any) << "the plan injected nothing at all";

    // Replicates run different seeds, hence different logs.
    EXPECT_NE(fi::formatLog(a[0].result.injections),
              fi::formatLog(a[1].result.injections));
}

// ----------------------------- injectors and graceful degradation

TEST(Injectors, DroppedInterruptsFlagGaps)
{
    fi::FaultPlan plan;
    plan.add(fi::FaultKind::IrqDrop, {{"p", 0.5}});
    const ScenarioResult res = runScenario(withPlan(plan));

    EXPECT_GT(res.samplerStats.droppedInterrupts, 0u);
    EXPECT_GT(res.samplerStats.gapCount, 0u);
    bool flagged = false;
    for (const auto &r : res.records)
        for (const auto &p : r.timeline.periods)
            flagged = flagged || p.gapBefore;
    EXPECT_TRUE(flagged)
        << "no period carries the gapBefore degradation flag";
}

TEST(Injectors, CounterCorruptionFlagsSuspectsAndStaysFinite)
{
    fi::FaultPlan plan;
    plan.add(fi::FaultKind::CtrCorrupt, {{"p", 0.9}});
    const ScenarioResult res = runScenario(withPlan(plan));

    EXPECT_GT(res.samplerStats.suspectCount, 0u);
    // Graceful degradation: tampered reads never leak NaN/Inf or
    // negative deltas into the recorded timelines.
    for (const auto &r : res.records) {
        for (const auto &p : r.timeline.periods) {
            EXPECT_TRUE(std::isfinite(p.cycles));
            EXPECT_TRUE(std::isfinite(p.instructions));
            EXPECT_TRUE(std::isfinite(p.l2Refs));
            EXPECT_TRUE(std::isfinite(p.l2Misses));
            EXPECT_GE(p.cycles, 0.0);
            EXPECT_GE(p.instructions, 0.0);
        }
    }
    // Exact kernel attribution is ground truth: untouched by
    // counter-read corruption.
    const ScenarioResult clean = runScenario(smallCfg());
    ASSERT_EQ(res.records.size(), clean.records.size());
    for (std::size_t i = 0; i < res.records.size(); ++i) {
        EXPECT_EQ(res.records[i].totals.cycles,
                  clean.records[i].totals.cycles);
    }
}

TEST(Injectors, StuckRequestsInflateBusyCycles)
{
    fi::FaultPlan plan;
    plan.add(fi::FaultKind::ReqStuck, {{"p", 1.0}, {"mult", 4.0}});
    const ScenarioResult base = runScenario(smallCfg());
    const ScenarioResult res = runScenario(withPlan(plan));

    EXPECT_GT(res.busyCycles, base.busyCycles);
    const auto truth = fi::faultedRequests(res.injections);
    EXPECT_FALSE(truth.empty());
}

TEST(Injectors, SyscallStallsAccrueInTheKernel)
{
    fi::FaultPlan plan;
    plan.add(fi::FaultKind::SysStall,
             {{"p", 1.0}, {"cycles", 100000.0}});
    const ScenarioResult base = runScenario(smallCfg());
    const ScenarioResult res = runScenario(withPlan(plan));

    EXPECT_GT(res.kernelStats.faultStallCycles, 0.0);
    EXPECT_GT(res.wallCycles, base.wallCycles);
}

TEST(Injectors, ContextLossIsCountedNotFatal)
{
    fi::FaultPlan plan;
    plan.add(fi::FaultKind::CtxLoss, {{"p", 1.0}});
    const ScenarioResult res = runScenario(withPlan(plan));

    EXPECT_GT(res.kernelStats.lostSwitchContexts, 0u);
    // The run still completes its request quota.
    EXPECT_FALSE(res.records.empty());
}

TEST(Injectors, CoreSlowIsLoggedAndSlowsTheRun)
{
    fi::FaultPlan plan;
    plan.add(fi::FaultKind::CoreSlow,
             {{"core", 0.0},
              {"from-ms", 0.1},
              {"for-ms", 5.0},
              {"frac", 0.5}});
    const ScenarioResult base = runScenario(smallCfg());
    const ScenarioResult res = runScenario(withPlan(plan));

    bool logged = false;
    for (const auto &inj : res.injections)
        logged = logged || inj.kind == fi::FaultKind::CoreSlow;
    EXPECT_TRUE(logged);
    EXPECT_GT(res.wallCycles, base.wallCycles);
}

// ------------------------------------------- runner job faults

TEST(JobFaults, CrashedJobsFailAfterBoundedRetries)
{
    ScenarioGrid grid(smallCfg());
    grid.replicates(3);
    auto jobs = grid.jobs();

    fi::FaultPlan plan;
    plan.add(fi::FaultKind::JobCrash, {{"p", 1.0}});
    applyJobFaults(jobs, plan, 5);

    RunnerOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    opts.maxRetries = 1;
    opts.backoffMs = 0.0;
    const auto results = ParallelRunner(opts).run(jobs);

    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results) {
        EXPECT_TRUE(r.failed);
        EXPECT_NE(r.error.find("injected job crash"),
                  std::string::npos);
        EXPECT_EQ(r.attempts, 2); // 1 try + 1 retry
        EXPECT_EQ(tryResultFor(results, r.key), nullptr);
    }
    EXPECT_EQ(exitCodeFor(results), 3);
}

TEST(JobFaults, TimeoutJobsReportTimeout)
{
    ScenarioConfig cfg = smallCfg();
    cfg.requests = 12;
    ScenarioGrid grid(cfg);
    auto jobs = grid.jobs();

    fi::FaultPlan plan;
    plan.add(fi::FaultKind::JobTimeout, {{"p", 1.0}});
    applyJobFaults(jobs, plan, 5);

    RunnerOptions opts;
    opts.jobs = 1;
    opts.progress = false;
    const auto results = ParallelRunner(opts).run(jobs);

    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].failed);
    EXPECT_NE(results[0].error.find("timeout"), std::string::npos);
    EXPECT_EQ(results[0].attempts, 1);
    EXPECT_EQ(exitCodeFor(results), 3);
}

TEST(JobFaults, SurvivingJobsStillAggregate)
{
    // A crash probability below 1 must leave the healthy jobs'
    // results intact and reachable (partial-result aggregation).
    ScenarioGrid grid(smallCfg());
    grid.replicates(4);
    auto jobs = grid.jobs();
    // Deterministically poison exactly one job instead of rolling
    // dice: pick jobs[1] by hand like a crash lottery would.
    jobs[1].body = [](const ScenarioConfig &) -> ScenarioResult {
        throw fi::InjectedFault("injected job crash (rep=1)");
    };

    RunnerOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    const auto results = ParallelRunner(opts).run(jobs);

    ASSERT_EQ(results.size(), 4u);
    EXPECT_TRUE(results[1].failed);
    for (std::size_t i : {std::size_t{0}, std::size_t{2},
                          std::size_t{3}}) {
        EXPECT_FALSE(results[i].failed);
        const ScenarioResult *r = tryResultFor(results,
                                               results[i].key);
        ASSERT_NE(r, nullptr);
        EXPECT_FALSE(r->records.empty());
    }
    EXPECT_EQ(exitCodeFor(results), 3);
}

// ------------------------------------------------ ranking evaluator

TEST(Eval, RankingScoresMatchHandComputation)
{
    // Positives at ranks 0 and 2 of 5; K = 2, top-2 holds one.
    const auto det =
        fi::evaluateRanking({true, false, true, false, false});
    EXPECT_EQ(det.scored, 5u);
    EXPECT_EQ(det.truthCount, 2u);
    EXPECT_EQ(det.hits, 1u);
    EXPECT_DOUBLE_EQ(det.precision, 0.5);
    EXPECT_DOUBLE_EQ(det.recall, 0.5);
    EXPECT_NEAR(det.rocAuc, 5.0 / 6.0, 1e-12);

    const auto perfect =
        fi::evaluateRanking({true, true, false, false});
    EXPECT_DOUBLE_EQ(perfect.precision, 1.0);
    EXPECT_DOUBLE_EQ(perfect.recall, 1.0);
    EXPECT_DOUBLE_EQ(perfect.rocAuc, 1.0);

    const auto inverted =
        fi::evaluateRanking({false, false, true, true});
    EXPECT_DOUBLE_EQ(inverted.precision, 0.0);
    EXPECT_DOUBLE_EQ(inverted.rocAuc, 0.0);
}

TEST(Eval, DegenerateRankingsAreDefined)
{
    const auto none = fi::evaluateRanking({false, false, false});
    EXPECT_EQ(none.truthCount, 0u);
    EXPECT_DOUBLE_EQ(none.precision, 0.0);
    EXPECT_DOUBLE_EQ(none.recall, 0.0);
    EXPECT_DOUBLE_EQ(none.rocAuc, 0.5);

    const auto all = fi::evaluateRanking({true, true});
    EXPECT_DOUBLE_EQ(all.precision, 1.0);
    EXPECT_DOUBLE_EQ(all.rocAuc, 0.5); // no negatives: undefined

    const auto empty = fi::evaluateRanking({});
    EXPECT_EQ(empty.scored, 0u);
    EXPECT_DOUBLE_EQ(empty.rocAuc, 0.5);
}

TEST(Eval, FaultedRequestsAreSortedAndDeduped)
{
    std::vector<fi::Injection> log;
    log.push_back({10, fi::FaultKind::ReqStuck, 7, 4.0});
    log.push_back({20, fi::FaultKind::IrqDrop, 0, 1.0});
    log.push_back({30, fi::FaultKind::ReqStuck, 3, 4.0});
    log.push_back({40, fi::FaultKind::ReqStuck, 7, 4.0});
    const auto ids = fi::faultedRequests(log);
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], 3);
    EXPECT_EQ(ids[1], 7);
}
