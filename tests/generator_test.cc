/**
 * @file
 * Tests for the five application workload generators.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "wl/apps.hh"
#include "wl/tpcc.hh"
#include "wl/tpch.hh"
#include "wl/webwork.hh"

using namespace rbv;
using namespace rbv::wl;

namespace {

std::vector<std::unique_ptr<RequestSpec>>
generateMany(App app, int n, std::uint64_t seed = 1)
{
    auto gen = makeGenerator(app);
    stats::Rng rng(seed);
    std::vector<std::unique_ptr<RequestSpec>> out;
    for (int i = 0; i < n; ++i)
        out.push_back(gen->generate(rng));
    return out;
}

} // namespace

/** Shared structural properties, checked for every application. */
class AllApps : public ::testing::TestWithParam<App>
{
};

TEST_P(AllApps, SpecsAreWellFormed)
{
    auto gen = makeGenerator(GetParam());
    const auto tiers = gen->tiers();
    ASSERT_FALSE(tiers.empty());

    stats::Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        auto spec = gen->generate(rng);
        ASSERT_FALSE(spec->stages.empty());
        EXPECT_FALSE(spec->className.empty());
        EXPECT_GT(spec->totalInstructions(), 0.0);
        for (const auto &stage : spec->stages) {
            EXPECT_GE(stage.tier, 0);
            EXPECT_LT(stage.tier, static_cast<int>(tiers.size()));
            for (const auto &seg : stage.segments) {
                EXPECT_GT(seg.params.baseCpi, 0.0);
                EXPECT_GE(seg.params.refsPerIns, 0.0);
                EXPECT_GE(seg.instructions, 0.0);
                EXPECT_LE(seg.params.curve.baseMissRatio, 1.0);
            }
        }
        // First stage must start on an existing tier.
        EXPECT_GE(spec->stages.front().tier, 0);
    }
}

TEST_P(AllApps, DeterministicForSameSeed)
{
    auto a = generateMany(GetParam(), 10, 42);
    auto b = generateMany(GetParam(), 10, 42);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(a[i]->className, b[i]->className);
        EXPECT_DOUBLE_EQ(a[i]->totalInstructions(),
                         b[i]->totalInstructions());
        EXPECT_EQ(a[i]->totalSegments(), b[i]->totalSegments());
    }
}

TEST_P(AllApps, SamplingDefaultsMatchPaper)
{
    auto gen = makeGenerator(GetParam());
    const double p = gen->defaultSamplingPeriodUs();
    // Sec. 3.1: 10 us (web), 100 us (TPCC, RUBiS), 1 ms (TPCH,
    // WeBWorK).
    switch (GetParam()) {
      case App::WebServer:
        EXPECT_DOUBLE_EQ(p, 10.0);
        break;
      case App::Tpcc:
      case App::Rubis:
        EXPECT_DOUBLE_EQ(p, 100.0);
        break;
      case App::Tpch:
      case App::WebWork:
        EXPECT_DOUBLE_EQ(p, 1000.0);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, AllApps,
                         ::testing::ValuesIn(allApps()),
                         [](const auto &info) {
                             return std::to_string(
                                 static_cast<int>(info.param));
                         });

TEST(WebServerGenT, RequestLengthsAreSubMillion)
{
    for (const auto &s : generateMany(App::WebServer, 200)) {
        EXPECT_GT(s->totalInstructions(), 2.0e4);
        EXPECT_LT(s->totalInstructions(), 3.0e6);
    }
}

TEST(WebServerGenT, ClassMixRoughly35_50_14_1)
{
    std::map<int, int> counts;
    const int n = 4000;
    for (const auto &s : generateMany(App::WebServer, n))
        ++counts[s->classId];
    EXPECT_NEAR(counts[0] / double(n), 0.35, 0.03);
    EXPECT_NEAR(counts[1] / double(n), 0.50, 0.03);
    EXPECT_NEAR(counts[2] / double(n), 0.14, 0.02);
    EXPECT_NEAR(counts[3] / double(n), 0.01, 0.01);
}

TEST(WebServerGenT, WritevPresentInEveryRequest)
{
    for (const auto &s : generateMany(App::WebServer, 50)) {
        bool has_writev = false;
        for (const auto &seg : s->stages[0].segments)
            if (seg.hasSyscall && seg.sysId == os::Sys::writev)
                has_writev = true;
        EXPECT_TRUE(has_writev);
    }
}

TEST(TpccGenT, MixIs45_43_4_4_4)
{
    std::map<int, int> counts;
    const int n = 6000;
    for (const auto &s : generateMany(App::Tpcc, n))
        ++counts[s->classId];
    EXPECT_NEAR(counts[TpccGen::NewOrder] / double(n), 0.45, 0.02);
    EXPECT_NEAR(counts[TpccGen::Payment] / double(n), 0.43, 0.02);
    EXPECT_NEAR(counts[TpccGen::OrderStatus] / double(n), 0.04, 0.01);
    EXPECT_NEAR(counts[TpccGen::Delivery] / double(n), 0.04, 0.01);
    EXPECT_NEAR(counts[TpccGen::StockLevel] / double(n), 0.04, 0.01);
}

TEST(TpccGenT, TypesHaveDistinctLengthScales)
{
    std::map<int, double> sum, cnt;
    for (const auto &s : generateMany(App::Tpcc, 3000)) {
        sum[s->classId] += s->totalInstructions();
        cnt[s->classId] += 1.0;
    }
    const double payment = sum[TpccGen::Payment] / cnt[TpccGen::Payment];
    const double new_order =
        sum[TpccGen::NewOrder] / cnt[TpccGen::NewOrder];
    const double delivery =
        sum[TpccGen::Delivery] / cnt[TpccGen::Delivery];
    EXPECT_LT(payment, new_order);
    EXPECT_LT(new_order, delivery);
}

TEST(TpchGenT, SeventeenQueries)
{
    EXPECT_EQ(TpchGen::querySet().size(), 17u);
    // The paper's subset: Q2..Q22 minus Q1, Q10, Q16, Q18, Q21.
    const std::set<int> qs(TpchGen::querySet().begin(),
                           TpchGen::querySet().end());
    EXPECT_TRUE(qs.count(20));
    EXPECT_FALSE(qs.count(1));
    EXPECT_FALSE(qs.count(10));
    EXPECT_FALSE(qs.count(16));
    EXPECT_FALSE(qs.count(18));
    EXPECT_FALSE(qs.count(21));
}

TEST(TpchGenT, EqualQueryProportions)
{
    std::map<int, int> counts;
    const int n = 3400;
    for (const auto &s : generateMany(App::Tpch, n))
        ++counts[s->classId];
    for (int q : TpchGen::querySet())
        EXPECT_NEAR(counts[q] / double(n), 1.0 / 17.0, 0.02);
}

TEST(TpchGenT, Q20IsLong)
{
    TpchGen gen;
    stats::Rng rng(5);
    const auto spec = gen.generateQuery(20, rng);
    EXPECT_EQ(spec->classId, 20);
    EXPECT_NEAR(spec->totalInstructions(), 8.0e7, 2.5e7);
}

TEST(RubisGenT, MultiTierStageChains)
{
    for (const auto &s : generateMany(App::Rubis, 100)) {
        EXPECT_GE(s->stages.size(), 4u);
        // Starts and ends at the web tier.
        EXPECT_EQ(s->stages.front().tier, 0);
        EXPECT_EQ(s->stages.back().tier, 0);
        // Visits the DB tier at least once.
        bool db = false;
        for (const auto &st : s->stages)
            db = db || st.tier == 2;
        EXPECT_TRUE(db);
    }
}

TEST(WebWorkGenT, SameProblemSharesInherentPattern)
{
    WebWorkGen gen;
    stats::Rng rng(9);
    const auto a = gen.generateProblem(954, rng);
    const auto b = gen.generateProblem(954, rng);
    // Same problem: identical segment structure (per-request jitter
    // only perturbs lengths a few percent).
    EXPECT_EQ(a->totalSegments(), b->totalSegments());
    EXPECT_NEAR(a->totalInstructions() / b->totalInstructions(), 1.0,
                0.05);
    const auto c = gen.generateProblem(955, rng);
    EXPECT_NE(a->totalSegments(), c->totalSegments());
}

TEST(WebWorkGenT, IdenticalPrologueAcrossProblems)
{
    WebWorkGen gen;
    stats::Rng rng(9);
    const auto a = gen.generateProblem(1, rng);
    const auto b = gen.generateProblem(2000, rng);
    // First segments identical byte-for-byte (module loading).
    for (int i = 0; i < 6; ++i) {
        const auto &sa = a->stages[0].segments[i];
        const auto &sb = b->stages[0].segments[i];
        EXPECT_DOUBLE_EQ(sa.instructions, sb.instructions);
        EXPECT_DOUBLE_EQ(sa.params.baseCpi, sb.params.baseCpi);
    }
}

TEST(WebWorkGenT, LongRequests)
{
    double max_ins = 0.0;
    for (const auto &s : generateMany(App::WebWork, 100)) {
        EXPECT_GT(s->totalInstructions(), 3.0e7);
        EXPECT_LT(s->totalInstructions(), 7.0e8);
        max_ins = std::max(max_ins, s->totalInstructions());
    }
    EXPECT_GT(max_ins, 1.5e8);
}

TEST(Apps, NamesRoundTrip)
{
    for (App app : allApps()) {
        EXPECT_FALSE(appDisplayName(app).empty());
    }
    EXPECT_EQ(appFromName("tpcc"), App::Tpcc);
    EXPECT_EQ(appFromName("webserver"), App::WebServer);
    EXPECT_THROW(appFromName("nope"), std::invalid_argument);
}
