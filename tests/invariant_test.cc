/**
 * @file
 * Cross-module invariant and property tests: conservation of work,
 * attribution completeness, monotonicity of the contention model,
 * and scheduling fairness properties that every valid configuration
 * must satisfy.
 */

#include <gtest/gtest.h>

#include "core/check.hh"
#include "exp/analysis.hh"
#include "exp/scenario.hh"
#include "os/kernel.hh"
#include "sim/cache.hh"
#include "sim/counters.hh"
#include "sim/event_queue.hh"
#include "sim/machine.hh"
#include "wl/mbench.hh"

using namespace rbv;
using namespace rbv::exp;

namespace {

ScenarioConfig
baseConfig(wl::App app, std::size_t requests, std::uint64_t seed = 21)
{
    ScenarioConfig cfg;
    cfg.app = app;
    cfg.requests = requests;
    cfg.warmup = 0; // every request inspected
    cfg.seed = seed;
    return cfg;
}

} // namespace

/** Parameterized over applications: attribution properties. */
class InvariantAllApps : public ::testing::TestWithParam<wl::App>
{
};

TEST_P(InvariantAllApps, RequestTotalsWithinMachineTotals)
{
    // The sum of per-request attributed instructions can never
    // exceed what the machine executed, and for a server workload
    // almost all executed work belongs to some request.
    const auto res = runScenario(baseConfig(GetParam(), 40));
    double attributed = 0.0;
    for (const auto &r : res.records)
        attributed += r.totals.instructions;

    // busyCycles is in cycles; recompute machine instructions from
    // the records' CPI-weighted totals is circular, so bound via
    // cycles instead: attributed cycles <= busy cycles.
    double attributed_cycles = 0.0;
    for (const auto &r : res.records)
        attributed_cycles += r.totals.cycles;
    EXPECT_LE(attributed_cycles, res.busyCycles * (1.0 + 1e-9));
    // Server workloads spend most busy time inside requests.
    EXPECT_GT(attributed_cycles, res.busyCycles * 0.5);
    EXPECT_GT(attributed, 0.0);
}

TEST_P(InvariantAllApps, TimelineNeverExceedsExactAccounting)
{
    const auto res = runScenario(baseConfig(GetParam(), 40));
    for (const auto &r : res.records) {
        // With "do no harm" compensation the sampled timeline can
        // only under-count events relative to the exact totals (a
        // small tail before completion is never sampled; the
        // compensation never over-subtracts below zero).
        EXPECT_LE(r.timeline.totalInstructions(),
                  r.totals.instructions * 1.02);
        for (const auto &p : r.timeline.periods) {
            EXPECT_GE(p.instructions, 0.0);
            EXPECT_GE(p.cycles, 0.0);
            EXPECT_GE(p.l2Refs, 0.0);
            EXPECT_GE(p.l2Misses, 0.0);
            // Misses never exceed references.
            EXPECT_LE(p.l2Misses, p.l2Refs + 1e-6);
        }
    }
}

TEST_P(InvariantAllApps, WallClockOrdering)
{
    const auto res = runScenario(baseConfig(GetParam(), 40));
    for (const auto &r : res.records) {
        EXPECT_GE(r.completed, r.injected);
        // Periods are recorded in wall order.
        sim::Tick prev = 0;
        for (const auto &p : r.timeline.periods) {
            EXPECT_GE(p.wallStart, prev);
            prev = p.wallStart;
        }
        // A request's CPU time cannot exceed its wall latency times
        // the core count.
        EXPECT_LE(r.totals.cycles,
                  static_cast<double>(r.completed - r.injected) * 4 +
                      1e4);
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, InvariantAllApps,
                         ::testing::Values(wl::App::WebServer,
                                           wl::App::Tpcc,
                                           wl::App::Rubis),
                         [](const auto &info) {
                             return wl::makeGenerator(info.param)
                                 ->appName();
                         });

TEST(Invariant, CpiNeverBelowBase)
{
    // No request can beat its segments' best-case pipeline CPI by
    // much (kernel fixed work has CPI >= 1.4; the cheapest user
    // segments sit near 0.6).
    const auto res = runScenario(baseConfig(wl::App::Tpcc, 60));
    for (const auto &r : res.records)
        EXPECT_GT(r.cpi(), 0.55);
}

TEST(Invariant, MoreCoresNeverSlowerWallClock)
{
    // Same workload, 1 vs 4 cores: total wall time must shrink (the
    // requests are CPU bound and the closed loop is identical).
    auto cfg1 = baseConfig(wl::App::Tpcc, 60);
    cfg1.numCores = 1;
    const auto r1 = runScenario(cfg1);
    auto cfg4 = baseConfig(wl::App::Tpcc, 60);
    const auto r4 = runScenario(cfg4);
    EXPECT_LT(r4.wallCycles, r1.wallCycles);
}

TEST(Invariant, BiggerL2NeverHurtsCacheBoundWork)
{
    auto small = baseConfig(wl::App::Tpch, 25);
    small.l2CapacityMiB = 2.0;
    auto large = baseConfig(wl::App::Tpch, 25);
    large.l2CapacityMiB = 8.0;
    const double cpi_small =
        overallMetric(runScenario(small).records, core::Metric::Cpi);
    const double cpi_large =
        overallMetric(runScenario(large).records, core::Metric::Cpi);
    EXPECT_LT(cpi_large, cpi_small);
}

TEST(Invariant, SamplingPerturbsButDoesNotDistort)
{
    // With observer injection on vs off, the workload's overall CPI
    // must agree within a few percent (the observer effect is real
    // but small at the default periods).
    auto on = baseConfig(wl::App::Tpcc, 60);
    auto off = on;
    off.injectObserverCost = false;
    const double cpi_on =
        overallMetric(runScenario(on).records, core::Metric::Cpi);
    const double cpi_off =
        overallMetric(runScenario(off).records, core::Metric::Cpi);
    EXPECT_NEAR(cpi_on / cpi_off, 1.0, 0.05);
}

TEST(Invariant, SeedChangesDataNotShape)
{
    // Different seeds must produce different request streams but
    // statistically consistent aggregates.
    const auto a = runScenario(baseConfig(wl::App::Tpcc, 120, 1));
    const auto b = runScenario(baseConfig(wl::App::Tpcc, 120, 2));
    EXPECT_NE(a.wallCycles, b.wallCycles);
    const double cpi_a = overallMetric(a.records, core::Metric::Cpi);
    const double cpi_b = overallMetric(b.records, core::Metric::Cpi);
    EXPECT_NEAR(cpi_a / cpi_b, 1.0, 0.25);
}

/** Sampling-period sweep: sample counts scale with frequency. */
class PeriodSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PeriodSweep, SampleCountTracksPeriod)
{
    auto cfg = baseConfig(wl::App::Tpcc, 40);
    cfg.samplingPeriodUs = GetParam();
    const auto res = runScenario(cfg);
    // Expected interrupt samples ~= busy time / period.
    const double expected =
        sim::cyclesToUs(res.busyCycles) / GetParam();
    EXPECT_NEAR(
        static_cast<double>(res.samplerStats.interruptSamples),
        expected, expected * 0.35 + 20.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PeriodSweep,
                         ::testing::Values(50.0, 100.0, 200.0, 400.0),
                         [](const auto &info) {
                             return "us" + std::to_string(
                                               (int)info.param);
                         });

// ---------------------------------------------------------------------
// RBV_CHECK / RBV_DCHECK trip tests: each guarded invariant must
// abort loudly (death test) when violated, and stay silent on the
// legal path. These are the dynamic half of the rbvlint wall.
// ---------------------------------------------------------------------

TEST(CheckMacros, PassingChecksAreSilent)
{
    RBV_CHECK(2 + 2 == 4);
    RBV_CHECK(true, "never evaluated " << 42);
    RBV_DCHECK(1 < 2);
    RBV_DCHECK(true, "also never evaluated");
    SUCCEED();
}

using CheckTripDeath = ::testing::Test;

TEST(CheckTripDeath, ScheduleIntoThePastAborts)
{
    sim::EventQueue eq;
    eq.schedule(100, [] {});
    ASSERT_TRUE(eq.runOne());
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_DEATH(eq.schedule(50, [] {}),
                 "RBV_CHECK failed.*scheduled into the past");
}

TEST(CheckTripDeath, RunUntilBackwardsAborts)
{
    sim::EventQueue eq;
    eq.schedule(100, [] {});
    ASSERT_TRUE(eq.runOne());
    EXPECT_DEATH(eq.runUntil(50), "RBV_CHECK failed");
}

TEST(CheckTripDeath, NegativeCounterAccrualAborts)
{
    sim::PerfCounters pc;
    pc.accrue(1.0, 1.0, 0.0, 0.0); // legal
    EXPECT_DEATH(pc.accrue(-1.0, 0.0, 0.0, 0.0),
                 "RBV_DCHECK failed.*counter accrual regressed");
}

TEST(CheckTripDeath, NegativeFootprintAborts)
{
    sim::EventQueue eq;
    sim::MachineConfig mc;
    sim::Machine m(mc, eq);
    m.setOccupancy(0, mc.l2CapacityBytes * 2.0); // clamped: legal
    EXPECT_DOUBLE_EQ(m.occupancy(0), mc.l2CapacityBytes);
    EXPECT_DEATH(m.setOccupancy(0, -1.0),
                 "RBV_CHECK failed.*is not a byte count");
}

TEST(CheckTripDeath, InvalidCoreAndCpiAbort)
{
    sim::EventQueue eq;
    sim::MachineConfig mc;
    sim::Machine m(mc, eq);
    sim::WorkParams wp;
    EXPECT_DEATH(m.setWork(mc.numCores + 3, wp, 100.0),
                 "RBV_CHECK failed");
    wp.baseCpi = 0.0;
    EXPECT_DEATH(m.setWork(0, wp, 100.0),
                 "RBV_CHECK failed.*base CPI");
}

TEST(CheckTripDeath, WaterFillArityMismatchAborts)
{
    EXPECT_DEATH(
        sim::waterFillTargets(1024.0, {1.0, 2.0}, {512.0}),
        "RBV_CHECK failed.*arity mismatch");
}

TEST(CheckTripDeath, KernelDoubleStartAborts)
{
    sim::EventQueue eq;
    sim::MachineConfig mc;
    sim::Machine m(mc, eq);
    os::Kernel k(m);
    m.setClient(&k);
    k.start();
    EXPECT_DEATH(k.start(), "RBV_CHECK failed.*called twice");
}

TEST(CheckTripDeath, CompletingUnknownRequestAborts)
{
    sim::EventQueue eq;
    sim::MachineConfig mc;
    sim::Machine m(mc, eq);
    os::Kernel k(m);
    m.setClient(&k);
    EXPECT_DEATH(k.completeRequest(7), "RBV_CHECK failed");
}

TEST(Invariant, ChannelFifoAcrossManyWaiters)
{
    // Messages must be delivered in order even when several workers
    // wait on one channel: request ids complete in injection order
    // for a deterministic single-core serial setup.
    auto cfg = baseConfig(wl::App::Tpcc, 30);
    cfg.numCores = 1;
    cfg.concurrency = 1;
    const auto res = runScenario(cfg);
    for (std::size_t i = 1; i < res.records.size(); ++i)
        EXPECT_GT(res.records[i].completed,
                  res.records[i - 1].completed);
}
