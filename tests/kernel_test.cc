/**
 * @file
 * Unit and integration tests for the simulated kernel: scheduling,
 * system calls, channels, request-context tracking, and attribution.
 */

#include <gtest/gtest.h>

#include <deque>

#include "os/kernel.hh"

using namespace rbv;
using namespace rbv::os;

namespace {

/** Thread logic driven by a fixed action script. */
struct ScriptLogic : ThreadLogic
{
    std::deque<Action> script;
    std::vector<Message> received;
    int exhausted_calls = 0;

    Action
    next() override
    {
        if (script.empty()) {
            ++exhausted_calls;
            return ActExit{};
        }
        Action a = script.front();
        script.pop_front();
        return a;
    }

    void
    onMessage(const Message &m) override
    {
        received.push_back(m);
    }
};

/** Logic that executes CPU chunks forever. */
struct SpinLogic : ThreadLogic
{
    double chunk;
    explicit SpinLogic(double chunk = 1e5) : chunk(chunk) {}

    Action
    next() override
    {
        sim::WorkParams p;
        p.baseCpi = 1.0;
        return ActExec{p, chunk};
    }
};

ActExec
execAction(double ins, double cpi = 1.0)
{
    sim::WorkParams p;
    p.baseCpi = cpi;
    return ActExec{p, ins};
}

ActSyscall
plainSyscall(Sys id = Sys::gettimeofday)
{
    ActSyscall a;
    a.id = id;
    return a;
}

ActSyscall
recvAction(ChannelId ch)
{
    ActSyscall a;
    a.id = Sys::recv;
    a.args.behavior = SysBehavior::ChannelRecv;
    a.args.channel = ch;
    return a;
}

ActSyscall
sendAction(ChannelId ch, Message msg = Message{})
{
    ActSyscall a;
    a.id = Sys::send;
    a.args.behavior = SysBehavior::ChannelSend;
    a.args.channel = ch;
    a.args.msg = msg;
    return a;
}

ActSyscall
sleepAction(double cycles)
{
    ActSyscall a;
    a.id = Sys::nanosleep;
    a.args.behavior = SysBehavior::BlockTimed;
    a.args.blockCycles = cycles;
    return a;
}

struct Rig
{
    sim::EventQueue eq;
    sim::Machine machine;
    Kernel kernel;

    explicit Rig(int cores = 2,
                 std::shared_ptr<SchedulerPolicy> policy = nullptr)
        : machine(makeConfig(cores), eq),
          kernel(machine, KernelConfig{}, std::move(policy))
    {
        machine.setClient(&kernel);
    }

    static sim::MachineConfig
    makeConfig(int cores)
    {
        sim::MachineConfig mc;
        mc.numCores = cores;
        mc.coresPerL2Domain = cores >= 2 ? 2 : 1;
        return mc;
    }
};

} // namespace

TEST(Kernel, ThreadExecutesScript)
{
    Rig rig(1);
    auto logic = std::make_unique<ScriptLogic>();
    auto *raw = logic.get();
    raw->script.push_back(execAction(1000.0));
    raw->script.push_back(execAction(2000.0, 2.0));
    const ProcessId proc = rig.kernel.createProcess("p");
    rig.kernel.createThread(proc, std::move(logic));
    rig.kernel.start();
    rig.eq.runUntil(10'000'000);
    EXPECT_EQ(raw->exhausted_calls, 1);
    const auto &snap = rig.machine.counters(0).snapshot();
    EXPECT_NEAR(snap.instructions, 3000.0 +
                    rig.kernel.config().contextSwitchCost.instructions,
                5.0);
}

TEST(Kernel, PlainSyscallCostCharged)
{
    Rig rig(1);
    auto logic = std::make_unique<ScriptLogic>();
    auto sc = plainSyscall();
    sc.args.kernelInstructions = 5000.0;
    sc.args.kernelCpi = 2.0;
    logic->script.push_back(sc);
    rig.kernel.createThread(rig.kernel.createProcess("p"),
                            std::move(logic));
    rig.kernel.start();
    rig.eq.runUntil(10'000'000);
    const auto &snap = rig.machine.counters(0).snapshot();
    // Context switch + syscall kernel instructions.
    const double expect =
        5000.0 + rig.kernel.config().contextSwitchCost.instructions;
    EXPECT_NEAR(snap.instructions, expect, 5.0);
    EXPECT_EQ(rig.kernel.stats().syscalls, 1u);
}

TEST(Kernel, BlockTimedSleepsAndResumes)
{
    Rig rig(1);
    auto logic = std::make_unique<ScriptLogic>();
    auto *raw = logic.get();
    raw->script.push_back(sleepAction(100000.0));
    raw->script.push_back(execAction(1000.0));
    rig.kernel.createThread(rig.kernel.createProcess("p"),
                            std::move(logic));
    rig.kernel.start();
    rig.eq.runUntil(50'000'000);
    EXPECT_EQ(raw->exhausted_calls, 1);
    EXPECT_GE(rig.kernel.stats().wakeups, 1u);
}

TEST(Kernel, ChannelSendRecvDeliversPayload)
{
    Rig rig(2);
    const ChannelId ch = rig.kernel.createChannel();
    int payload = 7;

    auto receiver = std::make_unique<ScriptLogic>();
    auto *recv_raw = receiver.get();
    recv_raw->script.push_back(recvAction(ch));
    recv_raw->script.push_back(execAction(500.0));

    auto sender = std::make_unique<ScriptLogic>();
    Message msg;
    msg.tag = 42;
    msg.payload = &payload;
    sender->script.push_back(execAction(2000.0));
    sender->script.push_back(sendAction(ch, msg));

    const ProcessId proc = rig.kernel.createProcess("p");
    rig.kernel.createThread(proc, std::move(receiver));
    rig.kernel.createThread(proc, std::move(sender));
    rig.kernel.start();
    rig.eq.runUntil(50'000'000);

    ASSERT_EQ(recv_raw->received.size(), 1u);
    EXPECT_EQ(recv_raw->received[0].tag, 42u);
    EXPECT_EQ(recv_raw->received[0].payload, &payload);
}

TEST(Kernel, RecvBlocksUntilMessage)
{
    Rig rig(1);
    const ChannelId ch = rig.kernel.createChannel();
    auto receiver = std::make_unique<ScriptLogic>();
    auto *raw = receiver.get();
    raw->script.push_back(recvAction(ch));
    raw->script.push_back(execAction(100.0));
    rig.kernel.createThread(rig.kernel.createProcess("p"),
                            std::move(receiver));
    rig.kernel.start();
    rig.eq.runUntil(1'000'000);
    EXPECT_TRUE(raw->received.empty());

    rig.kernel.post(ch, Message{});
    rig.eq.runUntil(2'000'000);
    EXPECT_EQ(raw->received.size(), 1u);
    EXPECT_EQ(raw->exhausted_calls, 1);
}

TEST(Kernel, QueuedMessageSatisfiesRecvImmediately)
{
    Rig rig(1);
    const ChannelId ch = rig.kernel.createChannel();
    auto receiver = std::make_unique<ScriptLogic>();
    auto *raw = receiver.get();
    raw->script.push_back(recvAction(ch));
    rig.kernel.createThread(rig.kernel.createProcess("p"),
                            std::move(receiver));
    rig.kernel.post(ch, Message{}); // queued before start
    rig.kernel.start();
    rig.eq.runUntil(1'000'000);
    EXPECT_EQ(raw->received.size(), 1u);
}

TEST(Kernel, ChannelSinkReceivesSynchronously)
{
    Rig rig(1);
    const ChannelId ch = rig.kernel.createChannel();
    std::vector<std::uint64_t> tags;
    rig.kernel.setChannelSink(ch, [&](const Message &m) {
        tags.push_back(m.tag);
    });
    auto sender = std::make_unique<ScriptLogic>();
    Message m;
    m.tag = 9;
    sender->script.push_back(sendAction(ch, m));
    rig.kernel.createThread(rig.kernel.createProcess("p"),
                            std::move(sender));
    rig.kernel.start();
    rig.eq.runUntil(1'000'000);
    EXPECT_EQ(tags, (std::vector<std::uint64_t>{9}));
}

TEST(Kernel, RequestContextPropagatesOverChannel)
{
    // Sender holds request R (via an injected message); its send must
    // stamp R onto the forwarded message, and the receiving thread
    // must adopt R.
    Rig rig(2);
    const ChannelId in = rig.kernel.createChannel();
    const ChannelId hop = rig.kernel.createChannel();
    const ChannelId reply = rig.kernel.createChannel();

    RequestId completed = InvalidRequestId;
    rig.kernel.setChannelSink(reply, [&](const Message &m) {
        completed = m.request;
        rig.kernel.completeRequest(m.request);
    });

    auto stage1 = std::make_unique<ScriptLogic>();
    stage1->script.push_back(recvAction(in));
    stage1->script.push_back(execAction(10000.0));
    stage1->script.push_back(sendAction(hop)); // no explicit request
    auto stage2 = std::make_unique<ScriptLogic>();
    stage2->script.push_back(recvAction(hop));
    stage2->script.push_back(execAction(20000.0));
    stage2->script.push_back(sendAction(reply));

    const ProcessId proc = rig.kernel.createProcess("p");
    rig.kernel.createThread(proc, std::move(stage1));
    rig.kernel.createThread(proc, std::move(stage2));

    const RequestId req = rig.kernel.registerRequest("test.req",
                                                     nullptr);
    rig.kernel.start();
    Message m;
    m.request = req;
    rig.kernel.post(in, m);
    rig.eq.runUntil(100'000'000);

    EXPECT_EQ(completed, req);
    const RequestInfo &info = rig.kernel.request(req);
    EXPECT_TRUE(info.done);
    // Both stages' user instructions must be attributed to R.
    EXPECT_GT(info.totals.instructions, 29000.0);
}

TEST(Kernel, RequestTotalsFreezeAtCompletion)
{
    Rig rig(1);
    const ChannelId in = rig.kernel.createChannel();
    const ChannelId reply = rig.kernel.createChannel();
    rig.kernel.setChannelSink(reply, [&](const Message &m) {
        rig.kernel.completeRequest(m.request);
    });

    auto logic = std::make_unique<ScriptLogic>();
    logic->script.push_back(recvAction(in));
    logic->script.push_back(execAction(5000.0));
    logic->script.push_back(sendAction(reply));
    logic->script.push_back(execAction(500000.0)); // postamble
    rig.kernel.createThread(rig.kernel.createProcess("p"),
                            std::move(logic));

    const RequestId req = rig.kernel.registerRequest("r", nullptr);
    rig.kernel.start();
    Message m;
    m.request = req;
    rig.kernel.post(in, m);
    rig.eq.runUntil(100'000'000);

    const RequestInfo &info = rig.kernel.request(req);
    EXPECT_TRUE(info.done);
    EXPECT_GT(info.totals.instructions, 5000.0);
    EXPECT_LT(info.totals.instructions, 100000.0); // postamble excluded
}

TEST(Kernel, SyscallSequenceRecordedPerRequest)
{
    Rig rig(1);
    const ChannelId in = rig.kernel.createChannel();
    const ChannelId reply = rig.kernel.createChannel();
    rig.kernel.setChannelSink(reply, [&](const Message &m) {
        rig.kernel.completeRequest(m.request);
    });
    auto logic = std::make_unique<ScriptLogic>();
    logic->script.push_back(recvAction(in));
    logic->script.push_back(plainSyscall(Sys::stat));
    logic->script.push_back(plainSyscall(Sys::open));
    logic->script.push_back(sendAction(reply));
    rig.kernel.createThread(rig.kernel.createProcess("p"),
                            std::move(logic));
    const RequestId req = rig.kernel.registerRequest("r", nullptr);
    rig.kernel.start();
    Message m;
    m.request = req;
    rig.kernel.post(in, m);
    rig.eq.runUntil(100'000'000);

    const auto &seq = rig.kernel.request(req).syscalls;
    ASSERT_EQ(seq.size(), 3u);
    EXPECT_EQ(seq[0], Sys::stat);
    EXPECT_EQ(seq[1], Sys::open);
    EXPECT_EQ(seq[2], Sys::send);
}

TEST(Kernel, QuantumPreemptionSharesCore)
{
    // Two spinners on one core must alternate via quantum expiry.
    struct ShortQuantum : SchedulerPolicy
    {
        sim::Tick
        quantum() const override
        {
            return sim::usToCycles(100.0);
        }
    };
    Rig rig(1, std::make_shared<ShortQuantum>());
    const ProcessId proc = rig.kernel.createProcess("p");
    rig.kernel.createThread(proc, std::make_unique<SpinLogic>(1e4));
    rig.kernel.createThread(proc, std::make_unique<SpinLogic>(1e4));
    rig.kernel.start();
    rig.eq.runUntil(sim::msToCycles(10.0));
    EXPECT_GT(rig.kernel.stats().preemptions, 10u);
}

TEST(Kernel, NoPreemptionWithoutCompetition)
{
    Rig rig(2);
    rig.kernel.createThread(rig.kernel.createProcess("p"),
                            std::make_unique<SpinLogic>(1e5));
    rig.kernel.start();
    rig.eq.runUntil(sim::msToCycles(300.0));
    EXPECT_EQ(rig.kernel.stats().preemptions, 0u);
}

TEST(Kernel, WakePrefersIdleCore)
{
    Rig rig(2);
    const ProcessId proc = rig.kernel.createProcess("p");
    // One spinner (lands on core 0) and one sleeper.
    rig.kernel.createThread(proc, std::make_unique<SpinLogic>(1e5));
    auto sleeper = std::make_unique<ScriptLogic>();
    sleeper->script.push_back(sleepAction(50000.0));
    sleeper->script.push_back(execAction(1000.0));
    rig.kernel.createThread(proc, std::move(sleeper));
    rig.kernel.start();
    rig.eq.runUntil(sim::msToCycles(10.0));
    // The sleeper must have run on the idle core: core 1 accrued
    // instructions.
    EXPECT_GT(rig.machine.counters(1).snapshot().instructions, 0.0);
}

TEST(Kernel, RunqueueLengthReflectsLoad)
{
    Rig rig(1);
    const ProcessId proc = rig.kernel.createProcess("p");
    for (int i = 0; i < 3; ++i)
        rig.kernel.createThread(proc, std::make_unique<SpinLogic>());
    rig.kernel.start();
    rig.eq.runUntil(1000);
    // One running, two queued.
    EXPECT_EQ(rig.kernel.runqueueLength(0), 2u);
    EXPECT_NE(rig.kernel.runningThread(0), InvalidThreadId);
}

TEST(Kernel, HooksObserveSyscallsAndSwitches)
{
    struct CountingHooks : KernelHooks
    {
        int syscalls = 0;
        int switches = 0;
        void
        onSyscallEntry(sim::CoreId, ThreadId, RequestId, Sys) override
        {
            ++syscalls;
        }
        void
        onRequestSwitch(sim::CoreId, RequestId, RequestId) override
        {
            ++switches;
        }
    };
    Rig rig(1);
    CountingHooks hooks;
    rig.kernel.addHooks(&hooks);

    const ChannelId in = rig.kernel.createChannel();
    const ChannelId reply = rig.kernel.createChannel();
    rig.kernel.setChannelSink(reply, [&](const Message &m) {
        rig.kernel.completeRequest(m.request);
    });
    auto logic = std::make_unique<ScriptLogic>();
    logic->script.push_back(recvAction(in));
    logic->script.push_back(plainSyscall(Sys::stat));
    logic->script.push_back(sendAction(reply));
    rig.kernel.createThread(rig.kernel.createProcess("p"),
                            std::move(logic));
    const RequestId req = rig.kernel.registerRequest("r", nullptr);
    rig.kernel.start();
    Message m;
    m.request = req;
    rig.kernel.post(in, m);
    rig.eq.runUntil(100'000'000);

    EXPECT_GE(hooks.syscalls, 3); // recv + stat + send
    EXPECT_GE(hooks.switches, 1); // request adoption
}

TEST(Kernel, CompletionHookFires)
{
    struct CompletionHooks : KernelHooks
    {
        std::vector<RequestId> completed;
        void
        onRequestComplete(const RequestInfo &info) override
        {
            completed.push_back(info.id);
        }
    };
    Rig rig(1);
    CompletionHooks hooks;
    rig.kernel.addHooks(&hooks);
    const RequestId req = rig.kernel.registerRequest("r", nullptr);
    rig.kernel.completeRequest(req);
    EXPECT_EQ(hooks.completed, (std::vector<RequestId>{req}));
    // Double completion is a no-op.
    rig.kernel.completeRequest(req);
    EXPECT_EQ(hooks.completed.size(), 1u);
}

TEST(Kernel, ExitedThreadFreesCore)
{
    Rig rig(1);
    const ProcessId proc = rig.kernel.createProcess("p");
    auto logic = std::make_unique<ScriptLogic>(); // exits immediately
    rig.kernel.createThread(proc, std::move(logic));
    rig.kernel.createThread(proc, std::make_unique<SpinLogic>(1e4));
    rig.kernel.start();
    rig.eq.runUntil(sim::msToCycles(5.0));
    // The spinner must be running after the first thread exited.
    EXPECT_NE(rig.kernel.runningThread(0), InvalidThreadId);
    EXPECT_GT(rig.machine.counters(0).snapshot().instructions, 1e5);
}
