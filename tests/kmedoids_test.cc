/**
 * @file
 * Tests for k-medoids clustering (Sec. 4.2).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/model/kmedoids.hh"

using namespace rbv;
using namespace rbv::core;

namespace {

/** 1-D points -> distance matrix. */
DistanceMatrix
matrixOf(const std::vector<double> &points)
{
    return DistanceMatrix::build(
        points.size(), [&](std::size_t i, std::size_t j) {
            return std::abs(points[i] - points[j]);
        });
}

} // namespace

TEST(DistanceMatrix, SymmetricStorage)
{
    DistanceMatrix dm(3);
    dm.set(0, 2, 5.0);
    EXPECT_DOUBLE_EQ(dm.at(0, 2), 5.0);
    EXPECT_DOUBLE_EQ(dm.at(2, 0), 5.0);
    EXPECT_DOUBLE_EQ(dm.at(1, 1), 0.0);
}

TEST(DistanceMatrix, BuildCallsUpperTriangle)
{
    int calls = 0;
    DistanceMatrix::build(4, [&](std::size_t, std::size_t) {
        ++calls;
        return 1.0;
    });
    EXPECT_EQ(calls, 6);
}

TEST(KMedoids, RecoversPlantedClusters)
{
    // Three tight groups far apart.
    std::vector<double> pts;
    for (double c : {0.0, 100.0, 200.0})
        for (int i = 0; i < 10; ++i)
            pts.push_back(c + i * 0.1);
    stats::Rng rng(3);
    const auto cl = kMedoids(matrixOf(pts), 3, rng);

    // All members of a planted group share one cluster id.
    for (int g = 0; g < 3; ++g) {
        const std::size_t first = cl.assignment[g * 10];
        for (int i = 1; i < 10; ++i)
            EXPECT_EQ(cl.assignment[g * 10 + i], first);
    }
    // And different groups map to different clusters.
    std::set<std::size_t> ids(cl.assignment.begin(),
                              cl.assignment.end());
    EXPECT_EQ(ids.size(), 3u);
}

TEST(KMedoids, MedoidIsCentralMember)
{
    std::vector<double> pts = {0.0, 1.0, 2.0, 3.0, 4.0};
    stats::Rng rng(5);
    const auto cl = kMedoids(matrixOf(pts), 1, rng);
    ASSERT_EQ(cl.medoids.size(), 1u);
    EXPECT_EQ(cl.medoids[0], 2u); // the median point
}

TEST(KMedoids, KClampedToN)
{
    std::vector<double> pts = {0.0, 1.0};
    stats::Rng rng(7);
    const auto cl = kMedoids(matrixOf(pts), 10, rng);
    EXPECT_EQ(cl.medoids.size(), 2u);
    EXPECT_DOUBLE_EQ(cl.totalCost, 0.0);
}

TEST(KMedoids, EmptyInput)
{
    stats::Rng rng(9);
    const auto cl = kMedoids(DistanceMatrix(0), 3, rng);
    EXPECT_TRUE(cl.medoids.empty());
    EXPECT_TRUE(cl.assignment.empty());
}

TEST(KMedoids, CostDecreasesWithMoreClusters)
{
    stats::Rng prng(11);
    std::vector<double> pts;
    for (int i = 0; i < 60; ++i)
        pts.push_back(prng.uniform(0.0, 100.0));
    const auto dm = matrixOf(pts);
    double prev = 1e18;
    for (std::size_t k : {1u, 2u, 4u, 8u}) {
        stats::Rng rng(13);
        const auto cl = kMedoids(dm, k, rng);
        EXPECT_LE(cl.totalCost, prev + 1e-9);
        prev = cl.totalCost;
    }
}

TEST(KMedoids, MembersOfPartitionsAll)
{
    std::vector<double> pts;
    for (int i = 0; i < 30; ++i)
        pts.push_back(i);
    stats::Rng rng(15);
    const auto cl = kMedoids(matrixOf(pts), 3, rng);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cl.medoids.size(); ++c)
        total += cl.membersOf(c).size();
    EXPECT_EQ(total, pts.size());
}

TEST(Divergence, ZeroWhenPropertiesMatchMedoid)
{
    Clustering cl;
    cl.medoids = {0};
    cl.assignment = {0, 0, 0};
    EXPECT_DOUBLE_EQ(divergenceFromCentroid(cl, {2.0, 2.0, 2.0}), 0.0);
}

TEST(Divergence, KnownValue)
{
    Clustering cl;
    cl.medoids = {0};
    cl.assignment = {0, 0};
    // |4-2|/2 averaged with |2-2|/2 -> 0.5.
    EXPECT_DOUBLE_EQ(divergenceFromCentroid(cl, {2.0, 4.0}), 0.5);
}

TEST(Divergence, TightClustersBeatRandomAssignment)
{
    // Quality metric must rank a correct clustering above a planted
    // wrong one.
    std::vector<double> pts;
    for (int i = 0; i < 20; ++i)
        pts.push_back(i < 10 ? 1.0 + i * 0.01 : 10.0 + i * 0.01);
    stats::Rng rng(17);
    const auto good = kMedoids(matrixOf(pts), 2, rng);

    Clustering bad;
    bad.medoids = {0, 19};
    bad.assignment.resize(20);
    for (int i = 0; i < 20; ++i)
        bad.assignment[i] = i % 2; // interleaved: wrong on purpose

    EXPECT_LT(divergenceFromCentroid(good, pts),
              divergenceFromCentroid(bad, pts));
}
