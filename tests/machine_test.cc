/**
 * @file
 * Unit tests for the multicore machine execution model.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"

using namespace rbv::sim;

namespace {

constexpr double MiB = 1024.0 * 1024.0;

/** Test client recording work completions. */
struct TestClient : CoreClient
{
    std::vector<CoreId> completions;
    void
    onWorkComplete(CoreId core) override
    {
        completions.push_back(core);
    }
};

/** CPU-bound params with no cache traffic. */
WorkParams
cpuParams(double cpi = 1.0)
{
    WorkParams p;
    p.baseCpi = cpi;
    p.refsPerIns = 0.0;
    return p;
}

/** Cache-hungry params. */
WorkParams
memParams(double ws_mib, double refs = 0.03, double miss = 0.08)
{
    WorkParams p;
    p.baseCpi = 0.8;
    p.refsPerIns = refs;
    p.curve = MissCurve{ws_mib * MiB, miss, 1.0};
    return p;
}

struct Rig
{
    EventQueue eq;
    TestClient client;
    Machine machine;

    explicit Rig(int cores = 4, Tick refresh = 0)
        : machine(makeConfig(cores, refresh), eq, &client)
    {
    }

    static MachineConfig
    makeConfig(int cores, Tick refresh)
    {
        MachineConfig mc;
        mc.numCores = cores;
        mc.coresPerL2Domain = cores >= 2 ? 2 : 1;
        mc.modelRefreshIntervalCycles = refresh;
        return mc;
    }
};

} // namespace

TEST(Machine, CpuBoundWorkTakesCpiCycles)
{
    Rig rig;
    rig.machine.setWork(0, cpuParams(2.0), 1000.0);
    rig.eq.runUntil(1'000'000);
    ASSERT_EQ(rig.client.completions.size(), 1u);
    const auto &snap = rig.machine.counters(0).snapshot();
    EXPECT_NEAR(snap.instructions, 1000.0, 1.0);
    EXPECT_NEAR(snap.cycles, 2000.0, 2.0);
}

TEST(Machine, IdleCoreAccruesNothing)
{
    Rig rig;
    rig.machine.setWork(0, cpuParams(), 1000.0);
    rig.eq.runUntil(1'000'000);
    const auto &snap = rig.machine.counters(1).snapshot();
    EXPECT_EQ(snap.cycles, 0.0);
    EXPECT_EQ(snap.instructions, 0.0);
}

TEST(Machine, L2TrafficAccrues)
{
    Rig rig;
    rig.machine.setWork(0, memParams(1.0, 0.02, 0.1), 100000.0);
    rig.eq.runUntil(100'000'000);
    const auto &snap = rig.machine.counters(0).snapshot();
    EXPECT_NEAR(snap.l2Refs, 2000.0, 10.0);
    EXPECT_GT(snap.l2Misses, 0.0);
    EXPECT_LE(snap.l2Misses, snap.l2Refs);
}

TEST(Machine, EffectiveCpiIncludesMemoryStalls)
{
    Rig rig;
    rig.machine.setWork(0, memParams(2.0, 0.03, 0.1), 1000000.0);
    rig.eq.runUntil(1'000'000'000);
    const auto &snap = rig.machine.counters(0).snapshot();
    const double cpi = snap.cycles / snap.instructions;
    EXPECT_GT(cpi, 0.8); // base alone would be 0.8
}

TEST(Machine, FixedWorkAccountsExactly)
{
    Rig rig;
    rig.machine.pushFixedWork(0, FixedWork{1000.0, 500.0, 20.0, 5.0});
    rig.eq.runUntil(1'000'000);
    const auto &snap = rig.machine.counters(0).snapshot();
    EXPECT_NEAR(snap.cycles, 1000.0, 1.0);
    EXPECT_NEAR(snap.instructions, 500.0, 1.0);
    EXPECT_NEAR(snap.l2Refs, 20.0, 0.1);
    EXPECT_NEAR(snap.l2Misses, 5.0, 0.1);
    // Fixed-only work does not raise onWorkComplete.
    EXPECT_TRUE(rig.client.completions.empty());
}

TEST(Machine, FixedWorkDelaysRegularWork)
{
    Rig rig;
    rig.machine.setWork(0, cpuParams(1.0), 1000.0);
    rig.machine.pushFixedWork(0, FixedWork{5000.0, 100.0, 0.0, 0.0});
    rig.eq.runUntil(1'000'000);
    ASSERT_EQ(rig.client.completions.size(), 1u);
    // Completion requires fixed (5000) + regular (1000) cycles.
    EXPECT_GE(rig.eq.now(), 6000u);
    EXPECT_LE(rig.eq.now(), 6100u);
}

TEST(Machine, ZeroCycleFixedWorkAccruesImmediately)
{
    Rig rig;
    rig.machine.pushFixedWork(0, FixedWork{0.0, 42.0, 7.0, 1.0});
    const auto &snap = rig.machine.counters(0).snapshot();
    EXPECT_DOUBLE_EQ(snap.instructions, 42.0);
}

TEST(Machine, ClearWorkStopsExecution)
{
    Rig rig;
    rig.machine.setWork(0, cpuParams(), 1e9);
    rig.eq.runUntil(1000);
    rig.machine.clearWork(0);
    const double ins_at_clear =
        rig.machine.counters(0).snapshot().instructions;
    rig.eq.runUntil(100000);
    EXPECT_DOUBLE_EQ(rig.machine.counters(0).snapshot().instructions,
                     ins_at_clear);
    EXPECT_TRUE(rig.client.completions.empty());
}

TEST(Machine, InsRemainingTracksProgress)
{
    Rig rig;
    rig.machine.setWork(0, cpuParams(1.0), 10000.0);
    rig.eq.runUntil(4000);
    EXPECT_NEAR(rig.machine.insRemaining(0), 6000.0, 10.0);
}

TEST(Machine, CycleTimerFiresAfterBusyCycles)
{
    Rig rig;
    bool fired = false;
    Tick fire_tick = 0;
    rig.machine.setWork(0, cpuParams(), 1e9);
    rig.machine.armCycleTimer(0, 5000.0, [&] {
        fired = true;
        fire_tick = rig.eq.now();
    });
    rig.eq.runUntil(1'000'000);
    EXPECT_TRUE(fired);
    EXPECT_NEAR(static_cast<double>(fire_tick), 5000.0, 10.0);
}

TEST(Machine, CycleTimerStallsWhileIdle)
{
    Rig rig;
    bool fired = false;
    rig.machine.armCycleTimer(0, 5000.0, [&] { fired = true; });
    rig.eq.runUntil(100000);
    EXPECT_FALSE(fired); // halted core accrues no non-halt cycles

    // Give it work; the timer should now run down.
    rig.machine.setWork(0, cpuParams(), 1e9);
    rig.eq.runUntil(200000);
    EXPECT_TRUE(fired);
}

TEST(Machine, DisarmCycleTimer)
{
    Rig rig;
    bool fired = false;
    rig.machine.setWork(0, cpuParams(), 1e9);
    rig.machine.armCycleTimer(0, 5000.0, [&] { fired = true; });
    rig.eq.runUntil(1000);
    rig.machine.disarmCycleTimer(0);
    rig.eq.runUntil(100000);
    EXPECT_FALSE(fired);
}

TEST(Machine, RearmTimerReplacesPending)
{
    Rig rig;
    int which = 0;
    rig.machine.setWork(0, cpuParams(), 1e9);
    rig.machine.armCycleTimer(0, 5000.0, [&] { which = 1; });
    rig.machine.armCycleTimer(0, 9000.0, [&] { which = 2; });
    rig.eq.runUntil(7000);
    EXPECT_EQ(which, 0);
    rig.eq.runUntil(20000);
    EXPECT_EQ(which, 2);
}

TEST(Machine, CoRunnerRaisesCpiOnSharedCache)
{
    // Solo run of a cache-hungry workload.
    double solo_cpi;
    {
        Rig rig(4, usToCycles(50.0));
        rig.machine.setWork(0, memParams(5.0, 0.04, 0.08), 3e6);
        rig.eq.runUntil(2'000'000'000);
        const auto &s = rig.machine.counters(0).snapshot();
        solo_cpi = s.cycles / s.instructions;
    }
    // Same workload co-running with a cache-hungry neighbor in the
    // same L2 domain (cores 0 and 1 share).
    double shared_cpi;
    {
        Rig rig(4, usToCycles(50.0));
        rig.machine.setWork(0, memParams(5.0, 0.04, 0.08), 3e6);
        rig.machine.setWork(1, memParams(5.0, 0.04, 0.08), 1e9);
        rig.eq.runUntil(2'000'000'000);
        const auto &s = rig.machine.counters(0).snapshot();
        shared_cpi = s.cycles / s.instructions;
    }
    EXPECT_GT(shared_cpi, solo_cpi * 1.1);
}

TEST(Machine, DifferentDomainNoL2Contention)
{
    // A neighbor in the OTHER domain shares only memory bandwidth;
    // with modest bandwidth the CPI penalty must be far smaller than
    // same-domain sharing.
    auto run = [&](CoreId other) {
        Rig rig(4, usToCycles(50.0));
        rig.machine.setWork(0, memParams(5.0, 0.03, 0.06), 3e6);
        if (other >= 0)
            rig.machine.setWork(other, memParams(5.0, 0.03, 0.06),
                                1e9);
        rig.eq.runUntil(2'000'000'000);
        const auto &s = rig.machine.counters(0).snapshot();
        return s.cycles / s.instructions;
    };
    const double solo = run(-1);
    const double cross_domain = run(2);
    const double same_domain = run(1);
    EXPECT_LT(cross_domain - solo, (same_domain - solo) * 0.5);
}

TEST(Machine, SmallWorkingSetImmuneToSharing)
{
    auto run = [&](bool with_neighbor) {
        Rig rig(4, usToCycles(50.0));
        rig.machine.setWork(0, memParams(0.25, 0.008, 0.03), 3e6);
        if (with_neighbor)
            rig.machine.setWork(1, memParams(5.0, 0.04, 0.1), 1e9);
        rig.eq.runUntil(2'000'000'000);
        const auto &s = rig.machine.counters(0).snapshot();
        return s.cycles / s.instructions;
    };
    const double solo = run(false);
    const double shared = run(true);
    EXPECT_LT(shared, solo * 1.25);
}

TEST(Machine, OccupancySaveRestore)
{
    Rig rig;
    rig.machine.setWork(0, memParams(1.0, 0.03, 0.1), 1e8);
    rig.eq.runUntil(50'000'000);
    const double occ = rig.machine.occupancy(0);
    EXPECT_GT(occ, 0.0);
    rig.machine.setOccupancy(0, 1234.0);
    EXPECT_DOUBLE_EQ(rig.machine.occupancy(0), 1234.0);
}

TEST(Machine, OccupancyClampedToCapacity)
{
    Rig rig;
    rig.machine.setOccupancy(0, 1e12);
    EXPECT_DOUBLE_EQ(rig.machine.occupancy(0),
                     rig.machine.config().l2CapacityBytes);
}

TEST(Machine, DomainInsertionIntegralGrowsWithMisses)
{
    Rig rig;
    const double before = rig.machine.domainInsertionIntegral(0);
    rig.machine.setWork(0, memParams(2.0, 0.03, 0.2), 1e6);
    rig.eq.runUntil(1'000'000'000);
    EXPECT_GT(rig.machine.domainInsertionIntegral(0), before);
    // Core 2's domain saw no activity.
    EXPECT_DOUBLE_EQ(rig.machine.domainInsertionIntegral(2), 0.0);
}

TEST(Machine, BackToBackSegments)
{
    Rig rig;
    rig.machine.setWork(0, cpuParams(1.0), 1000.0);
    rig.eq.runUntil(1'000'000);
    ASSERT_EQ(rig.client.completions.size(), 1u);
    rig.machine.setWork(0, cpuParams(2.0), 1000.0);
    rig.eq.runUntil(2'000'000);
    ASSERT_EQ(rig.client.completions.size(), 2u);
    const auto &snap = rig.machine.counters(0).snapshot();
    EXPECT_NEAR(snap.instructions, 2000.0, 2.0);
    EXPECT_NEAR(snap.cycles, 3000.0, 4.0);
}

TEST(Machine, CountersProgrammableSelectors)
{
    Rig rig;
    rig.machine.programCounters(0).program(0, HwEvent::BranchInstructions);
    rig.machine.setWork(0, cpuParams(1.0), 10000.0);
    rig.eq.runUntil(1'000'000);
    const auto &pc = rig.machine.counters(0);
    EXPECT_NEAR(static_cast<double>(pc.general(0)), 10000.0 * 0.18,
                5.0);
    EXPECT_EQ(pc.fixedInstructions(), 10000u);
}
