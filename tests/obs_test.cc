/**
 * @file
 * rbv::obs tests: histogram bucket math at exact boundaries, counter
 * and histogram shard merge under the runner's --jobs parallelism
 * (merged totals must equal a serial run's), and a minimal JSON
 * schema check over the Chrome trace_event export.
 *
 * The whole file also compiles and passes under -DRBV_OBS=0, where a
 * Session is inert: recording assertions are gated on
 * obs::attached(), and the writers must still emit valid (empty)
 * documents.
 */

#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/runner.hh"
#include "obs/obs.hh"

using namespace rbv;
using namespace rbv::obs;

namespace {

// ------------------------------------------------ minimal JSON model

/** Just enough JSON to validate the trace export structurally. */
struct JsonValue
{
    enum class Kind
    {
        Object,
        Array,
        String,
        Number,
        Bool,
        Null,
    };

    Kind kind = Kind::Null;
    std::map<std::string, JsonValue> object;
    std::vector<JsonValue> array;
    std::string str;
    double num = 0.0;
    bool boolean = false;

    bool
    has(const std::string &key) const
    {
        return kind == Kind::Object && object.count(key) > 0;
    }

    const JsonValue &
    at(const std::string &key) const
    {
        return object.at(key);
    }
};

/** Recursive-descent parser; throws std::runtime_error on bad input. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    JsonValue
    parse()
    {
        const JsonValue v = value();
        skipWs();
        if (pos != s.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error("json error at byte " +
                                 std::to_string(pos) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= s.size())
            fail("unexpected end");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    JsonValue
    value()
    {
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
          case 'f':
            return boolean();
          case 'n':
            return null();
          default:
            return number();
        }
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            const JsonValue key = string();
            expect(':');
            v.object[key.str] = value();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.array.push_back(value());
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    string()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        expect('"');
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                if (pos + 1 >= s.size())
                    fail("bad escape");
                ++pos;
            }
            v.str += s[pos++];
        }
        if (pos >= s.size())
            fail("unterminated string");
        ++pos;
        return v;
    }

    JsonValue
    number()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        const std::size_t start = pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
                s[pos] == 'e' || s[pos] == 'E'))
            ++pos;
        if (pos == start)
            fail("expected number");
        std::size_t used = 0;
        v.num = std::stod(s.substr(start, pos - start), &used);
        if (used != pos - start)
            fail("malformed number");
        return v;
    }

    JsonValue
    boolean()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (s.compare(pos, 4, "true") == 0) {
            v.boolean = true;
            pos += 4;
        } else if (s.compare(pos, 5, "false") == 0) {
            pos += 5;
        } else {
            fail("expected boolean");
        }
        return v;
    }

    JsonValue
    null()
    {
        if (s.compare(pos, 4, "null") != 0)
            fail("expected null");
        pos += 4;
        return JsonValue{};
    }

    const std::string &s;
    std::size_t pos = 0;
};

/** Schema check for one trace_event entry. */
void
checkTraceEvent(const JsonValue &ev)
{
    ASSERT_EQ(ev.kind, JsonValue::Kind::Object);
    ASSERT_TRUE(ev.has("ph"));
    ASSERT_TRUE(ev.has("name"));
    ASSERT_TRUE(ev.has("pid"));
    const std::string ph = ev.at("ph").str;
    if (ph == "M") {
        // Metadata: process_name / thread_name with an args.name.
        ASSERT_TRUE(ev.at("name").str == "process_name" ||
                    ev.at("name").str == "thread_name");
        ASSERT_TRUE(ev.has("args"));
        ASSERT_TRUE(ev.at("args").has("name"));
        return;
    }
    ASSERT_TRUE(ph == "X" || ph == "i" || ph == "b" || ph == "e")
        << "unexpected phase " << ph;
    ASSERT_TRUE(ev.has("cat"));
    ASSERT_TRUE(ev.has("ts"));
    ASSERT_TRUE(ev.has("tid"));
    ASSERT_EQ(ev.at("ts").kind, JsonValue::Kind::Number);
    if (ph == "X") {
        ASSERT_TRUE(ev.has("dur"));
    }
    if (ph == "i") {
        ASSERT_EQ(ev.at("s").str, "t");
    }
    if (ph == "b" || ph == "e") {
        ASSERT_TRUE(ev.has("id"));
    }
}

exp::ScenarioConfig
tinyScenario()
{
    exp::ScenarioConfig cfg;
    cfg.app = wl::App::WebServer;
    cfg.requests = 12;
    cfg.warmup = 2;
    cfg.concurrency = 4;
    return cfg;
}

std::vector<exp::Job>
tinyJobs()
{
    exp::ScenarioGrid grid(tinyScenario());
    grid.replicates(4);
    return grid.jobs();
}

/** Merged metrics of a tiny campaign run under @p jobs threads. */
MergedMetrics
campaignMetrics(int jobs)
{
    Session session;
    exp::RunnerOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    exp::ParallelRunner(opts).run(tinyJobs());
    return session.mergedMetrics();
}

// ------------------------------------------------------ bucket math

TEST(HistBucket, ExactBoundariesAreExclusiveAbove)
{
    const HistSpec spec{"t", "u", 1000.0, 2.0, 4};
    // Underflow below base.
    EXPECT_EQ(histBucket(spec, 0.0), 0);
    EXPECT_EQ(histBucket(spec, 999.999), 0);
    // Bucket i covers [base * f^(i-1), base * f^i).
    EXPECT_EQ(histBucket(spec, 1000.0), 1);
    EXPECT_EQ(histBucket(spec, 1999.999), 1);
    EXPECT_EQ(histBucket(spec, 2000.0), 2);
    EXPECT_EQ(histBucket(spec, 4000.0), 3);
    EXPECT_EQ(histBucket(spec, 8000.0), 4);
    EXPECT_EQ(histBucket(spec, 15999.0), 4);
    // Top finite boundary goes to overflow.
    EXPECT_EQ(histBucket(spec, 16000.0), 5);
    EXPECT_EQ(histBucket(spec, 1e30), 5);
}

TEST(HistBucket, PathologicalValues)
{
    const HistSpec spec{"t", "u", 1.0, 10.0, 3};
    EXPECT_EQ(histBucket(spec, std::nan("")), 0);
    EXPECT_EQ(histBucket(spec, -std::numeric_limits<double>::infinity()),
              0);
    EXPECT_EQ(histBucket(spec, std::numeric_limits<double>::infinity()),
              4);
    EXPECT_EQ(histBucket(spec, -5.0), 0);
}

TEST(HistBucket, LowBoundsMatchBucketAssignment)
{
    for (std::size_t h = 0; h < NumHists; ++h) {
        const HistSpec &spec = histSpec(static_cast<Hist>(h));
        EXPECT_EQ(histBucketLow(spec, 0),
                  -std::numeric_limits<double>::infinity());
        EXPECT_DOUBLE_EQ(histBucketLow(spec, 1), spec.base);
        for (int b = 1; b <= spec.buckets + 1; ++b) {
            // A bucket's inclusive lower bound must land in it.
            EXPECT_EQ(histBucket(spec, histBucketLow(spec, b)), b)
                << spec.name << " bucket " << b;
        }
    }
}

TEST(HistBucket, EverySpecIsSane)
{
    for (std::size_t h = 0; h < NumHists; ++h) {
        const HistSpec &spec = histSpec(static_cast<Hist>(h));
        EXPECT_NE(spec.name, nullptr);
        EXPECT_GT(spec.base, 0.0);
        EXPECT_GT(spec.factor, 1.0);
        EXPECT_GT(spec.buckets, 0);
    }
}

TEST(Catalogue, EveryKeyHasAName)
{
    for (std::size_t c = 0; c < NumCounters; ++c)
        EXPECT_STRNE(counterName(static_cast<Counter>(c)), "?");
    for (std::size_t p = 0; p < NumProfs; ++p)
        EXPECT_STRNE(profName(static_cast<Prof>(p)), "?");
}

// -------------------------------------------------------- recording

TEST(ObsSession, CountersAndHistogramsRecord)
{
    Session session;
    if (!attached())
        GTEST_SKIP() << "obs compiled out (RBV_OBS=0)";

    RBV_COUNT(SimEventsFired, 3);
    RBV_COUNT(SimEventsFired, 2);
    RBV_HIST(SamplingPeriodCycles, 1500.0); // bucket 1 of that spec
    RBV_HIST(SamplingPeriodCycles, 1.0);    // underflow

    const MergedMetrics m = session.mergedMetrics();
    EXPECT_EQ(
        m.counters[static_cast<std::size_t>(Counter::SimEventsFired)],
        5u);
    const auto &hist =
        m.hist[static_cast<std::size_t>(Hist::SamplingPeriodCycles)];
    EXPECT_EQ(hist[0], 1u);
    EXPECT_EQ(hist[1], 1u);
}

TEST(ObsSession, DormantWithoutSession)
{
    EXPECT_FALSE(attached());
    // Recording without a session must be a safe no-op.
    RBV_COUNT(SimEventsFired, 1);
    RBV_HIST(SamplingPeriodCycles, 1.0);
    simInstant("t", "orphan", 0, 0.0);
    { RBV_PROF_SCOPE(DtwDistance); }
    EXPECT_FALSE(attached());
}

TEST(ObsSession, SecondSessionIsInert)
{
    Session first;
    Session second;
    if (!attached())
        GTEST_SKIP() << "obs compiled out (RBV_OBS=0)";
    EXPECT_TRUE(first.active());
    EXPECT_FALSE(second.active());
    EXPECT_EQ(second.attachThread(0), nullptr);
}

TEST(ObsSession, ProfScopesAccumulate)
{
    Session session;
    if (!attached())
        GTEST_SKIP() << "obs compiled out (RBV_OBS=0)";
    for (int i = 0; i < 10; ++i) {
        RBV_PROF_SCOPE(KMedoids);
    }
    const auto rows = session.mergedProfile();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].key, Prof::KMedoids);
    EXPECT_EQ(rows[0].count, 10u);
}

TEST(ObsSession, RingDropsOldestBeyondCapacity)
{
    SessionConfig cfg;
    cfg.traceCapacityPerThread = 8;
    Session session(cfg);
    if (!attached())
        GTEST_SKIP() << "obs compiled out (RBV_OBS=0)";
    for (int i = 0; i < 20; ++i)
        simInstant("t", "e", 0, static_cast<double>(i));
    EXPECT_EQ(session.droppedEvents(), 12u);

    // The export keeps the newest events (ts 12..19).
    std::ostringstream os;
    session.writeChromeTrace(os);
    const JsonValue doc = JsonParser(os.str()).parse();
    double min_ts = 1e300;
    std::size_t instants = 0;
    for (const auto &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").str != "i")
            continue;
        ++instants;
        min_ts = std::min(min_ts, ev.at("ts").num);
    }
    EXPECT_EQ(instants, 8u);
    EXPECT_DOUBLE_EQ(min_ts, 12.0);
}

// ----------------------------------------------------- trace schema

TEST(TraceExport, EmptySessionIsValidJson)
{
    Session session;
    std::ostringstream os;
    session.writeChromeTrace(os);
    const JsonValue doc = JsonParser(os.str()).parse();
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    ASSERT_TRUE(doc.has("traceEvents"));
    EXPECT_EQ(doc.at("traceEvents").kind, JsonValue::Kind::Array);
}

TEST(TraceExport, EventsMatchTraceEventSchema)
{
    Session session;
    if (attached()) {
        simInstant("os.syscall", "read", 2, 10.5, "req", 7.0);
        simSpanBegin("os.request", "request", 42, 11.0);
        simSpanEnd("os.request", "request", 42, 99.0);
        hostSlice("exp.job", "app=web/rep=0", 1234.5);
        hostInstant("engine", "note");
        // A name needing JSON escaping must not corrupt the document.
        hostSlice("exp.job", "k=\"v\"\\w", 1.0);
    }

    std::ostringstream os;
    session.writeChromeTrace(os);
    const JsonValue doc = JsonParser(os.str()).parse();
    const auto &events = doc.at("traceEvents").array;
    if (!attached()) {
        EXPECT_TRUE(events.empty());
        return;
    }

    std::size_t data_events = 0;
    bool saw_escaped = false;
    for (const auto &ev : events) {
        checkTraceEvent(ev);
        if (ev.at("ph").str != "M")
            ++data_events;
        if (ev.at("name").str == "k=\"v\"\\w")
            saw_escaped = true;
    }
    EXPECT_EQ(data_events, 6u);
    EXPECT_TRUE(saw_escaped);

    // Sim events land on sim pid 1, host events on engine pid 0.
    for (const auto &ev : events) {
        if (ev.at("ph").str == "M")
            continue;
        const bool host = ev.at("cat").str == "exp.job" ||
                          ev.at("cat").str == "engine";
        EXPECT_EQ(static_cast<int>(ev.at("pid").num), host ? 0 : 1);
    }
}

TEST(TraceExport, CampaignTraceValidatesAndNamesJobProcesses)
{
    Session session;
    exp::RunnerOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    exp::ParallelRunner(opts).run(tinyJobs());

    std::ostringstream os;
    session.writeChromeTrace(os);
    const JsonValue doc = JsonParser(os.str()).parse();
    const auto &events = doc.at("traceEvents").array;
    if (!attached()) {
        EXPECT_TRUE(events.empty());
        return;
    }

    std::size_t named_jobs = 0;
    for (const auto &ev : events) {
        checkTraceEvent(ev);
        if (ev.at("ph").str == "M" &&
            ev.at("name").str == "process_name" &&
            ev.at("args").at("name").str.rfind("rep=", 0) == 0)
            ++named_jobs;
    }
    // Every job that recorded events has a named trace process.
    EXPECT_GE(named_jobs, 1u);
    EXPECT_GT(events.size(), 100u);
}

// ------------------------------------------- parallel merge == serial

TEST(ShardMerge, ParallelCampaignEqualsSerialTotals)
{
    const MergedMetrics serial = campaignMetrics(1);
    const MergedMetrics parallel = campaignMetrics(4);

    // Counters are sums of per-job deterministic work, so the merge
    // must be exactly thread-count independent.
    for (std::size_t c = 0; c < NumCounters; ++c) {
        EXPECT_EQ(serial.counters[c], parallel.counters[c])
            << counterName(static_cast<Counter>(c));
    }

    // Simulated-time histograms merge exactly. ExpJobMs buckets are
    // host-timing dependent; only its total count is deterministic.
    for (const Hist h : {Hist::SamplingPeriodCycles,
                         Hist::OsRequestLatencyUs}) {
        const auto &s = serial.hist[static_cast<std::size_t>(h)];
        const auto &p = parallel.hist[static_cast<std::size_t>(h)];
        ASSERT_EQ(s.size(), p.size());
        for (std::size_t b = 0; b < s.size(); ++b)
            EXPECT_EQ(s[b], p[b]) << histSpec(h).name << " bucket "
                                  << b;
    }
    std::uint64_t serial_jobs = 0, parallel_jobs = 0;
    for (const std::uint64_t n :
         serial.hist[static_cast<std::size_t>(Hist::ExpJobMs)])
        serial_jobs += n;
    for (const std::uint64_t n :
         parallel.hist[static_cast<std::size_t>(Hist::ExpJobMs)])
        parallel_jobs += n;
    EXPECT_EQ(serial_jobs, parallel_jobs);

#if RBV_OBS
    // With obs compiled in, the campaign must actually have recorded
    // simulator work (compiled out, all-zero == all-zero above).
    EXPECT_GT(serial.counters[static_cast<std::size_t>(
                  Counter::SimEventsFired)],
              0u);
    EXPECT_EQ(serial.counters[static_cast<std::size_t>(
                  Counter::ExpJobsCompleted)],
              4u);
#endif
}

// -------------------------------------------------- metrics writer

TEST(MetricsExport, FlatTextListsEveryCounterAndHistogram)
{
    Session session;
    if (attached()) {
        RBV_COUNT(OsSyscalls, 7);
        RBV_HIST(OsRequestLatencyUs, 25.0);
    }
    std::ostringstream os;
    session.writeMetrics(os);
    const std::string text = os.str();

    EXPECT_EQ(text.rfind("# rbv metrics v1", 0), 0u);
    for (std::size_t c = 0; c < NumCounters; ++c) {
        EXPECT_NE(text.find(std::string("counter ") +
                            counterName(static_cast<Counter>(c))),
                  std::string::npos);
    }
    for (std::size_t h = 0; h < NumHists; ++h) {
        EXPECT_NE(text.find(std::string("hist ") +
                            histSpec(static_cast<Hist>(h)).name),
                  std::string::npos);
    }
#if RBV_OBS
    EXPECT_NE(text.find("counter os.syscalls 7"), std::string::npos);
#else
    EXPECT_NE(text.find("counter os.syscalls 0"), std::string::npos);
#endif
}

} // namespace
