/**
 * @file
 * Kernel edge cases: channel waiter ordering, exit semantics,
 * preemption resume fidelity, footprint save/restore across
 * domains, and request-context corner cases.
 */

#include <gtest/gtest.h>

#include <deque>

#include "os/kernel.hh"

using namespace rbv;
using namespace rbv::os;

namespace {

struct ScriptLogic : ThreadLogic
{
    std::deque<Action> script;
    std::vector<Message> received;
    int done_calls = 0;

    Action
    next() override
    {
        if (script.empty()) {
            ++done_calls;
            return ActExit{};
        }
        Action a = script.front();
        script.pop_front();
        return a;
    }

    void
    onMessage(const Message &m) override
    {
        received.push_back(m);
    }
};

ActExec
execAction(double ins, double cpi = 1.0, double refs = 0.0,
           double ws = 0.0, double miss = 0.0)
{
    sim::WorkParams p;
    p.baseCpi = cpi;
    p.refsPerIns = refs;
    p.curve = sim::MissCurve{ws, miss, 1.0};
    return ActExec{p, ins};
}

ActSyscall
recvAction(ChannelId ch)
{
    ActSyscall a;
    a.id = Sys::recv;
    a.args.behavior = SysBehavior::ChannelRecv;
    a.args.channel = ch;
    return a;
}

ActSyscall
sendAction(ChannelId ch, std::uint64_t tag = 0)
{
    ActSyscall a;
    a.id = Sys::send;
    a.args.behavior = SysBehavior::ChannelSend;
    a.args.channel = ch;
    a.args.msg.tag = tag;
    return a;
}

struct Rig
{
    sim::EventQueue eq;
    sim::Machine machine;
    Kernel kernel;

    explicit Rig(int cores = 1)
        : machine(makeConfig(cores), eq), kernel(machine)
    {
        machine.setClient(&kernel);
    }

    static sim::MachineConfig
    makeConfig(int cores)
    {
        sim::MachineConfig mc;
        mc.numCores = cores;
        mc.coresPerL2Domain = cores >= 2 ? 2 : 1;
        return mc;
    }
};

} // namespace

TEST(OsEdge, WaitersServedInArrivalOrder)
{
    // Three workers blocked on one channel; three posted messages
    // must reach them in FIFO waiter order.
    Rig rig(1);
    const ChannelId ch = rig.kernel.createChannel();
    std::vector<ScriptLogic *> logics;
    const ProcessId proc = rig.kernel.createProcess("p");
    for (int i = 0; i < 3; ++i) {
        auto l = std::make_unique<ScriptLogic>();
        l->script.push_back(recvAction(ch));
        l->script.push_back(execAction(1000.0));
        logics.push_back(l.get());
        rig.kernel.createThread(proc, std::move(l));
    }
    rig.kernel.start();
    rig.eq.runUntil(sim::msToCycles(1.0)); // all blocked

    for (std::uint64_t t = 1; t <= 3; ++t) {
        Message m;
        m.tag = t;
        rig.kernel.post(ch, m);
    }
    rig.eq.runUntil(sim::msToCycles(10.0));

    // Thread 0 blocked first (it ran first on the single core).
    ASSERT_EQ(logics[0]->received.size(), 1u);
    ASSERT_EQ(logics[1]->received.size(), 1u);
    ASSERT_EQ(logics[2]->received.size(), 1u);
    EXPECT_EQ(logics[0]->received[0].tag, 1u);
    EXPECT_EQ(logics[1]->received[0].tag, 2u);
    EXPECT_EQ(logics[2]->received[0].tag, 3u);
}

TEST(OsEdge, QueuedMessagesDrainInOrderToOneWorker)
{
    Rig rig(1);
    const ChannelId ch = rig.kernel.createChannel();
    auto l = std::make_unique<ScriptLogic>();
    for (int i = 0; i < 3; ++i) {
        l->script.push_back(recvAction(ch));
        l->script.push_back(execAction(500.0));
    }
    auto *raw = l.get();
    rig.kernel.createThread(rig.kernel.createProcess("p"),
                            std::move(l));
    for (std::uint64_t t = 1; t <= 3; ++t) {
        Message m;
        m.tag = t;
        rig.kernel.post(ch, m);
    }
    rig.kernel.start();
    rig.eq.runUntil(sim::msToCycles(10.0));
    ASSERT_EQ(raw->received.size(), 3u);
    EXPECT_EQ(raw->received[0].tag, 1u);
    EXPECT_EQ(raw->received[2].tag, 3u);
}

TEST(OsEdge, PreemptionPreservesSegmentProgress)
{
    // A long segment preempted by quantum expiry must resume and
    // retire exactly its instruction budget.
    struct TinyQuantum : SchedulerPolicy
    {
        sim::Tick
        quantum() const override
        {
            return sim::usToCycles(50.0);
        }
    };
    sim::EventQueue eq;
    sim::Machine machine(Rig::makeConfig(1), eq);
    Kernel kernel(machine, KernelConfig{},
                  std::make_shared<TinyQuantum>());
    machine.setClient(&kernel);

    const ChannelId done = kernel.createChannel();
    int completions = 0;
    kernel.setChannelSink(done,
                          [&](const Message &) { ++completions; });

    const ProcessId proc = kernel.createProcess("p");
    for (int i = 0; i < 2; ++i) {
        auto l = std::make_unique<ScriptLogic>();
        l->script.push_back(execAction(1.0e6)); // ~333 us at CPI 1
        l->script.push_back(sendAction(done));
        kernel.createThread(proc, std::move(l));
    }
    kernel.start();
    eq.runUntil(sim::msToCycles(50.0));

    EXPECT_EQ(completions, 2);
    EXPECT_GT(kernel.stats().preemptions, 5u);
    // Total retired user instructions = 2M plus kernel costs.
    const double ins = machine.counters(0).snapshot().instructions;
    EXPECT_GT(ins, 2.0e6);
    EXPECT_LT(ins, 2.4e6);
}

TEST(OsEdge, FootprintLostAcrossDomains)
{
    // A thread building cache state on core 0 (domain 0) that
    // resumes on core 2 (domain 1) must restart cold. Exercise the
    // machine primitives the kernel's switch path uses, on a bare
    // machine (no kernel client).
    sim::EventQueue eq;
    sim::Machine m(Rig::makeConfig(4), eq);
    sim::WorkParams p;
    p.baseCpi = 1.0;
    p.refsPerIns = 0.03;
    p.curve = sim::MissCurve{2.0 * 1024 * 1024, 0.05, 1.0};
    m.setWork(0, p, 5.0e6);
    eq.runUntil(sim::msToCycles(5.0));
    const double occ = m.occupancy(0);
    EXPECT_GT(occ, 1.0e5);

    // Same-domain restore keeps the (decayed) footprint; the other
    // domain gets nothing.
    const sim::SavedFootprint fp{occ, m.domainInsertionIntegral(0)};
    const double same = fp.decayedBytes(m.domainInsertionIntegral(0),
                                        m.config().l2CapacityBytes);
    EXPECT_NEAR(same, occ, 1.0);
    EXPECT_EQ(m.domainOf(0), m.domainOf(1));
    EXPECT_NE(m.domainOf(0), m.domainOf(2));
}

TEST(OsEdge, ExitedThreadsLeaveRunqueueConsistent)
{
    Rig rig(1);
    const ProcessId proc = rig.kernel.createProcess("p");
    for (int i = 0; i < 5; ++i) {
        auto l = std::make_unique<ScriptLogic>();
        l->script.push_back(execAction(10000.0));
        rig.kernel.createThread(proc, std::move(l)); // then exits
    }
    rig.kernel.start();
    rig.eq.runUntil(sim::msToCycles(10.0));
    EXPECT_EQ(rig.kernel.runningThread(0), InvalidThreadId);
    EXPECT_EQ(rig.kernel.runqueueLength(0), 0u);
    // All five segments retired.
    EXPECT_GT(rig.machine.counters(0).snapshot().instructions,
              5.0e4);
}

TEST(OsEdge, RequestContextClearsWhenCoreIdles)
{
    Rig rig(1);
    const ChannelId in = rig.kernel.createChannel();
    const ChannelId reply = rig.kernel.createChannel();
    rig.kernel.setChannelSink(reply, [&](const Message &m) {
        rig.kernel.completeRequest(m.request);
    });
    auto l = std::make_unique<ScriptLogic>();
    l->script.push_back(recvAction(in));
    l->script.push_back(execAction(5000.0));
    l->script.push_back(sendAction(reply));
    l->script.push_back(recvAction(in)); // blocks forever
    rig.kernel.createThread(rig.kernel.createProcess("p"),
                            std::move(l));
    const RequestId req = rig.kernel.registerRequest("r", nullptr);
    rig.kernel.start();
    Message m;
    m.request = req;
    rig.kernel.post(in, m);
    rig.eq.runUntil(sim::msToCycles(10.0));

    // The worker blocked with no successor: the core idles and its
    // request context is gone.
    EXPECT_EQ(rig.kernel.currentRequest(0), InvalidRequestId);
    EXPECT_TRUE(rig.kernel.request(req).done);
}

TEST(OsEdge, ZeroInstructionExecIsSkipped)
{
    Rig rig(1);
    auto l = std::make_unique<ScriptLogic>();
    l->script.push_back(execAction(0.0));
    l->script.push_back(execAction(1000.0));
    auto *raw = l.get();
    rig.kernel.createThread(rig.kernel.createProcess("p"),
                            std::move(l));
    rig.kernel.start();
    rig.eq.runUntil(sim::msToCycles(5.0));
    EXPECT_EQ(raw->done_calls, 1);
}

TEST(OsEdge, SyscallSequenceCapRespected)
{
    sim::EventQueue eq;
    sim::Machine machine(Rig::makeConfig(1), eq);
    KernelConfig kc;
    kc.maxSyscallSeq = 5;
    Kernel kernel(machine, kc);
    machine.setClient(&kernel);

    const ChannelId in = kernel.createChannel();
    auto l = std::make_unique<ScriptLogic>();
    l->script.push_back(recvAction(in));
    for (int i = 0; i < 20; ++i) {
        ActSyscall a;
        a.id = Sys::stat;
        l->script.push_back(a);
        l->script.push_back(execAction(1000.0));
    }
    kernel.createThread(kernel.createProcess("p"), std::move(l));
    const RequestId req = kernel.registerRequest("r", nullptr);
    kernel.start();
    Message m;
    m.request = req;
    kernel.post(in, m);
    eq.runUntil(sim::msToCycles(20.0));

    EXPECT_EQ(kernel.request(req).syscalls.size(), 5u);
}

TEST(OsEdge, BlockedWakeTargetsLeastLoadedCore)
{
    // With both cores busy, a woken thread lands on the shorter
    // runqueue.
    Rig rig(2);
    const ProcessId proc = rig.kernel.createProcess("p");
    // Two long spinners occupy both cores.
    for (int i = 0; i < 2; ++i) {
        auto l = std::make_unique<ScriptLogic>();
        for (int k = 0; k < 100; ++k)
            l->script.push_back(execAction(1.0e6));
        rig.kernel.createThread(proc, std::move(l));
    }
    // A sleeper that wakes while both cores are busy.
    auto sleeper = std::make_unique<ScriptLogic>();
    {
        ActSyscall a;
        a.id = Sys::nanosleep;
        a.args.behavior = SysBehavior::BlockTimed;
        a.args.blockCycles =
            static_cast<double>(sim::usToCycles(100.0));
        sleeper->script.push_back(a);
        sleeper->script.push_back(execAction(1000.0));
    }
    rig.kernel.createThread(proc, std::move(sleeper));
    rig.kernel.start();
    rig.eq.runUntil(sim::usToCycles(200.0));
    // The woken sleeper waits behind exactly one of the spinners.
    EXPECT_EQ(rig.kernel.runqueueLength(0) +
                  rig.kernel.runqueueLength(1),
              1u);
}
