/**
 * @file
 * Tests for the online behavior predictors (Sec. 5.1).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/predict/predictor.hh"
#include "stats/rng.hh"

using namespace rbv::core;

TEST(RequestAverage, TimeWeightedMean)
{
    RequestAveragePredictor p;
    p.observe(1.0, 2.0);
    p.observe(3.0, 6.0);
    EXPECT_DOUBLE_EQ(p.predict(), 5.0); // (2 + 18) / 4
}

TEST(RequestAverage, ResetClears)
{
    RequestAveragePredictor p;
    p.observe(1.0, 5.0);
    p.reset();
    EXPECT_DOUBLE_EQ(p.predict(), 0.0);
}

TEST(LastValue, TracksLastObservation)
{
    LastValuePredictor p;
    p.observe(1.0, 3.0);
    p.observe(1.0, 7.0);
    EXPECT_DOUBLE_EQ(p.predict(), 7.0);
}

TEST(Ewma, MatchesEquation4)
{
    // E_k = alpha E_{k-1} + (1 - alpha) O_k, seeded by the first
    // observation.
    EwmaPredictor p(0.6);
    p.observe(1.0, 10.0);
    EXPECT_DOUBLE_EQ(p.predict(), 10.0);
    p.observe(1.0, 0.0);
    EXPECT_DOUBLE_EQ(p.predict(), 6.0);
    p.observe(1.0, 6.0);
    EXPECT_DOUBLE_EQ(p.predict(), 0.6 * 6.0 + 0.4 * 6.0);
}

TEST(Ewma, AlphaOneFreezes)
{
    EwmaPredictor p(1.0);
    p.observe(1.0, 5.0);
    p.observe(1.0, 100.0);
    EXPECT_DOUBLE_EQ(p.predict(), 5.0);
}

TEST(Ewma, AlphaZeroIsLastValue)
{
    EwmaPredictor p(0.0);
    p.observe(1.0, 5.0);
    p.observe(1.0, 100.0);
    EXPECT_DOUBLE_EQ(p.predict(), 100.0);
}

TEST(VaEwma, UnitLengthMatchesEwma)
{
    // With every observation of length t_hat, vaEWMA degenerates to
    // the plain EWMA (Eq. 5 with t_k = t_hat).
    EwmaPredictor e(0.7);
    VaEwmaPredictor v(0.7, 100.0);
    rbv::stats::Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const double x = rng.uniform();
        e.observe(100.0, x);
        v.observe(100.0, x);
        EXPECT_NEAR(e.predict(), v.predict(), 1e-12);
    }
}

TEST(VaEwma, LongObservationAgesMore)
{
    // One long observation must displace the old estimate more than
    // one short observation of the same value.
    VaEwmaPredictor short_obs(0.6, 100.0);
    VaEwmaPredictor long_obs(0.6, 100.0);
    short_obs.observe(100.0, 10.0);
    long_obs.observe(100.0, 10.0);
    short_obs.observe(10.0, 0.0);   // t = 0.1 t_hat
    long_obs.observe(1000.0, 0.0);  // t = 10 t_hat
    EXPECT_GT(short_obs.predict(), long_obs.predict());
    // Closed form: E = alpha^(t/t_hat) * 10.
    EXPECT_NEAR(short_obs.predict(), std::pow(0.6, 0.1) * 10.0, 1e-12);
    EXPECT_NEAR(long_obs.predict(), std::pow(0.6, 10.0) * 10.0, 1e-12);
}

TEST(VaEwma, SplitObservationEquivalence)
{
    // Aging must compose: observing a value over two half-length
    // periods equals observing it once over the full length.
    VaEwmaPredictor whole(0.5, 100.0);
    VaEwmaPredictor halves(0.5, 100.0);
    whole.observe(100.0, 4.0);
    halves.observe(100.0, 4.0);
    whole.observe(200.0, 0.0);
    halves.observe(100.0, 0.0);
    halves.observe(100.0, 0.0);
    EXPECT_NEAR(whole.predict(), halves.predict(), 1e-12);
}

TEST(Predictors, CloneIsFresh)
{
    VaEwmaPredictor p(0.6, 100.0);
    p.observe(100.0, 9.0);
    auto c = p.clone();
    EXPECT_DOUBLE_EQ(c->predict(), 0.0);
    EXPECT_EQ(c->name(), p.name());
}

TEST(Predictors, Names)
{
    EXPECT_EQ(RequestAveragePredictor().name(), "Request average");
    EXPECT_EQ(LastValuePredictor().name(), "Last value");
    EXPECT_EQ(EwmaPredictor(0.6).name(), "EWMA a=0.6");
    EXPECT_EQ(VaEwmaPredictor(0.3, 1.0).name(), "vaEWMA a=0.3");
}

// ------------------------------------ corrupted-telemetry guards

TEST(Predictors, NonFiniteObservationsAreIgnored)
{
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();

    RequestAveragePredictor avg;
    avg.observe(1.0, 4.0);
    avg.observe(nan, 100.0);
    avg.observe(1.0, nan);
    avg.observe(-5.0, 100.0); // non-positive window
    EXPECT_DOUBLE_EQ(avg.predict(), 4.0);

    LastValuePredictor last;
    last.observe(1.0, 3.0);
    last.observe(1.0, inf);
    EXPECT_DOUBLE_EQ(last.predict(), 3.0);

    EwmaPredictor ewma(0.5);
    ewma.observe(1.0, 8.0);
    ewma.observe(1.0, nan);
    EXPECT_DOUBLE_EQ(ewma.predict(), 8.0);

    VaEwmaPredictor va(0.6, 1.0);
    va.observe(1.0, 2.0);
    va.observe(1.0, -inf);
    EXPECT_DOUBLE_EQ(va.predict(), 2.0);
}

TEST(VaEwma, DegenerateWindowLengthsDoNotAmplifyHistory)
{
    // A negative or non-finite window length must not yield
    // alpha^(t/t_hat) > 1 (amplifying history) or NaN; it falls back
    // to plain-alpha aging.
    VaEwmaPredictor p(0.6, 100.0);
    p.observe(100.0, 10.0);
    p.observe(-50.0, 0.0);
    EXPECT_TRUE(std::isfinite(p.predict()));
    EXPECT_DOUBLE_EQ(p.predict(), 0.6 * 10.0);
    p.observe(std::nan(""), 0.0);
    EXPECT_TRUE(std::isfinite(p.predict()));
    EXPECT_LE(p.predict(), 10.0);
}

TEST(Fallback, DegradesDownTheChainAndRecovers)
{
    FallbackPredictor::Config cfg;
    cfg.staleAfterMisses = 2;
    FallbackPredictor p(cfg);
    EXPECT_STREQ(p.activeLevel(), "none");

    p.observe(1.0, 4.0);
    p.observe(1.0, 6.0);
    EXPECT_STREQ(p.activeLevel(), "vaEWMA");

    p.observeMissed(); // one dropped window: last-value
    EXPECT_STREQ(p.activeLevel(), "last");
    EXPECT_DOUBLE_EQ(p.predict(), 6.0);

    p.observeMissed();
    p.observeMissed(); // past staleAfterMisses: request average
    EXPECT_STREQ(p.activeLevel(), "avg");
    EXPECT_DOUBLE_EQ(p.predict(), 5.0); // (4 + 6) / 2, unit windows
    EXPECT_EQ(p.missedWindows(), 3u);

    p.observe(1.0, 8.0); // telemetry recovers
    EXPECT_STREQ(p.activeLevel(), "vaEWMA");
}

TEST(Fallback, AlwaysFiniteAndClamped)
{
    FallbackPredictor p;
    EXPECT_DOUBLE_EQ(p.predict(), 0.0); // never observed

    p.observe(std::nan(""), std::nan("")); // counts as a miss
    EXPECT_EQ(p.missedWindows(), 1u);
    EXPECT_TRUE(std::isfinite(p.predict()));

    p.observe(1.0, 1e30); // clamped at clampHi
    EXPECT_DOUBLE_EQ(p.predict(), 1e12);
    p.reset();
    EXPECT_STREQ(p.activeLevel(), "none");
    EXPECT_DOUBLE_EQ(p.predict(), 0.0);
}

TEST(Predictors, VaEwmaTracksPhaseChangeFasterThanAverage)
{
    // A step change: the adaptive filter must converge to the new
    // level while the request-average lags — the reason Fig. 11
    // favors vaEWMA.
    RequestAveragePredictor avg;
    VaEwmaPredictor va(0.6, 1.0);
    for (int i = 0; i < 50; ++i) {
        avg.observe(1.0, 1.0);
        va.observe(1.0, 1.0);
    }
    for (int i = 0; i < 10; ++i) {
        avg.observe(1.0, 5.0);
        va.observe(1.0, 5.0);
    }
    EXPECT_GT(va.predict(), 4.5);
    EXPECT_LT(avg.predict(), 2.5);
}
