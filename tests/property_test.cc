/**
 * @file
 * Parameterized property sweeps over the differencing measures and
 * the contention model: metric-space properties that must hold for
 * every input size and penalty setting, and model monotonicities
 * that must hold across machine configurations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/model/distance.hh"
#include "sim/cache.hh"
#include "sim/machine.hh"
#include "stats/rng.hh"

using namespace rbv;
using namespace rbv::core;

namespace {

MetricSeries
randomSeries(stats::Rng &rng, std::size_t n, double lo = 0.5,
             double hi = 4.0)
{
    MetricSeries s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back(rng.uniform(lo, hi));
    return s;
}

} // namespace

// --------------------------------------------- distance properties

/** (series length, penalty) sweep. */
class DistanceProps
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
  protected:
    std::size_t n() const { return std::get<0>(GetParam()); }
    double penalty() const { return std::get<1>(GetParam()); }
};

TEST_P(DistanceProps, IdentityOfIndiscernibles)
{
    stats::Rng rng(n() * 31 + 7);
    const auto x = randomSeries(rng, n());
    EXPECT_DOUBLE_EQ(l1Distance(x, x, penalty()), 0.0);
    EXPECT_DOUBLE_EQ(dtwDistance(x, x, penalty()), 0.0);
    EXPECT_DOUBLE_EQ(avgMetricDistance(x, x), 0.0);
}

TEST_P(DistanceProps, SymmetryAndNonNegativity)
{
    stats::Rng rng(n() * 131 + 1);
    for (int trial = 0; trial < 20; ++trial) {
        const auto x = randomSeries(rng, n());
        const auto y =
            randomSeries(rng, n() + rng.uniformInt(n() + 1));
        const double l1xy = l1Distance(x, y, penalty());
        const double dtwxy = dtwDistance(x, y, penalty());
        EXPECT_GE(l1xy, 0.0);
        EXPECT_GE(dtwxy, 0.0);
        EXPECT_DOUBLE_EQ(l1xy, l1Distance(y, x, penalty()));
        EXPECT_NEAR(dtwxy, dtwDistance(y, x, penalty()), 1e-9);
    }
}

TEST_P(DistanceProps, DtwLowerBoundedByAvgGap)
{
    // Any warp path must pay at least |mean(x) - mean(y)| per
    // aligned pair on average cannot be stated exactly, but DTW is
    // always >= the single best-pair difference: the minimum
    // pointwise |x_i - y_j| over all pairs (every path step pays at
    // least the global minimum pair cost).
    stats::Rng rng(n() * 17 + 3);
    const auto x = randomSeries(rng, n());
    const auto y = randomSeries(rng, n());
    double min_pair = 1e18;
    for (double a : x)
        for (double b : y)
            min_pair = std::min(min_pair, std::abs(a - b));
    EXPECT_GE(dtwDistance(x, y, penalty()),
              min_pair - 1e-12);
}

TEST_P(DistanceProps, ShiftInvarianceGapOfDtw)
{
    // DTW with zero penalty absorbs a pure one-slot rotation almost
    // entirely; L1 generally does not.
    stats::Rng rng(n() * 311 + 5);
    auto x = randomSeries(rng, n());
    MetricSeries y(x.begin() + 1, x.end());
    y.push_back(x.front());
    EXPECT_LE(dtwDistance(x, y),
              l1Distance(x, y, penalty()) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistanceProps,
    ::testing::Combine(::testing::Values(4, 16, 64, 200),
                       ::testing::Values(0.0, 0.5, 2.0)),
    [](const auto &info) {
        // Built with += rather than operator+ chains: GCC 12's
        // -Wrestrict misfires on `const char* + std::string&&`
        // (gcc bug 105329), which -Werror would turn fatal.
        std::string name = "n";
        name += std::to_string(std::get<0>(info.param));
        name += "_p";
        name += std::to_string(
            static_cast<int>(std::get<1>(info.param) * 10));
        return name;
    });

// --------------------------------------------- contention sweeps

/** Working-set sweep: co-runner damage grows with working set. */
class ContentionSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ContentionSweep, CoRunnerPenaltyGrowsWithWorkingSet)
{
    const double ws_mib = GetParam();
    auto run = [&](bool neighbor) {
        sim::EventQueue eq;
        sim::MachineConfig mc;
        mc.numCores = 2;
        mc.coresPerL2Domain = 2;
        sim::Machine m(mc, eq);
        sim::WorkParams p;
        p.baseCpi = 0.8;
        p.refsPerIns = 0.03;
        p.curve = sim::MissCurve{ws_mib * 1024 * 1024, 0.06, 1.2};
        m.setWork(0, p, 2.0e7);
        if (neighbor)
            m.setWork(1, p, 1.0e9);
        eq.runUntil(20'000'000'000ULL);
        const auto &s = m.counters(0).snapshot();
        return s.cycles / s.instructions;
    };
    const double penalty = run(true) / run(false);
    EXPECT_GE(penalty, 0.99);

    // Compare against the next-smaller sweep point: monotone within
    // tolerance is implicitly covered by the absolute bounds below.
    if (ws_mib <= 1.0) {
        EXPECT_LT(penalty, 1.3); // fits beside a twin
    } else if (ws_mib >= 8.0) {
        EXPECT_GT(penalty, 1.3); // heavy competition
    } else if (ws_mib >= 3.0) {
        EXPECT_GT(penalty, 1.05); // visible competition
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ContentionSweep,
                         ::testing::Values(0.5, 1.0, 3.0, 5.0, 8.0),
                         [](const auto &info) {
                             return "ws" +
                                    std::to_string(static_cast<int>(
                                        info.param * 10));
                         });

// --------------------------------------------- water-fill sweeps

/** Runner-count sweep: shares shrink as runners join. */
class WaterFillSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(WaterFillSweep, SharesShrinkWithMoreRunners)
{
    const int n = GetParam();
    const double cap = 4.0 * 1024 * 1024;
    std::vector<double> w(n, 1.0), ws(n, 16.0 * 1024 * 1024);
    const auto t = sim::waterFillTargets(cap, w, ws);
    for (double share : t)
        EXPECT_NEAR(share, cap / n, 1.0);

    if (n > 1) {
        std::vector<double> w1(n - 1, 1.0),
            ws1(n - 1, 16.0 * 1024 * 1024);
        const auto t1 = sim::waterFillTargets(cap, w1, ws1);
        EXPECT_GT(t1[0], t[0]);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WaterFillSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

// --------------------------------------------- levenshtein sweeps

class LevenshteinSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(LevenshteinSweep, MetricAxiomsOnRandomSequences)
{
    const auto n = static_cast<std::size_t>(GetParam());
    stats::Rng rng(n * 7 + 13);
    auto rand_seq = [&](std::size_t len) {
        std::vector<os::Sys> s;
        for (std::size_t i = 0; i < len; ++i)
            s.push_back(static_cast<os::Sys>(rng.uniformInt(6)));
        return s;
    };
    for (int trial = 0; trial < 10; ++trial) {
        const auto a = rand_seq(n);
        const auto b = rand_seq(n + rng.uniformInt(5));
        const auto c = rand_seq(n);
        const double ab = levenshteinDistance(a, b);
        const double ba = levenshteinDistance(b, a);
        const double ac = levenshteinDistance(a, c);
        const double cb = levenshteinDistance(c, b);
        EXPECT_DOUBLE_EQ(ab, ba);
        EXPECT_GE(ab, 0.0);
        // Triangle inequality (exact DP below the subsample cap).
        EXPECT_LE(ab, ac + cb + 1e-12);
        // Upper bound: max length.
        EXPECT_LE(ab, static_cast<double>(std::max(a.size(),
                                                   b.size())));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LevenshteinSweep,
                         ::testing::Values(2, 8, 32, 128));
