// Fixture: inline escapes suppress matching violations only.
#include <cstdint>

namespace rbv::sim {

// A cold-path diagnostic counter, reviewed and accepted.
// rbvlint: allow(R2)
static std::uint64_t gDiagCounter = 0;

std::uint64_t
bumpDiag()
{
    static std::uint64_t local = 0; // rbvlint: allow(global-state)
    ++gDiagCounter;
    return ++local;
}

} // namespace rbv::sim
