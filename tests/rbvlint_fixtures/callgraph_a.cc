// Call-graph fixture, TU A: rootFn reaches midFn (defined in TU B)
// by name; the closure test checks cross-TU edges.
namespace cg {

void midFn(); // declaration only; the definition lives in TU B

void
rootFn()
{
    midFn();
}

} // namespace cg
