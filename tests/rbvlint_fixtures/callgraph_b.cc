// Call-graph fixture, TU B: midFn -> leafFn; orphanFn is defined but
// never called, so it must stay outside rootFn's closure.
namespace cg {

void
leafFn()
{
}

void
midFn()
{
    leafFn();
}

void
orphanFn()
{
    leafFn();
}

} // namespace cg
