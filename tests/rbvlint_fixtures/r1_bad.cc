// Fixture: R1 violations — host entropy and clocks in src/.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace rbv::wl {

double
noisyDelay()
{
    std::srand(42);
    const int jitter = rand() % 7;
    std::random_device rd;
    std::mt19937 engine; // default seed, silently shared
    const auto wall = std::chrono::system_clock::now();
    const long stamp = time(nullptr);
    return static_cast<double>(jitter + rd() + stamp) +
           static_cast<double>(engine()) +
           static_cast<double>(wall.time_since_epoch().count());
}

} // namespace rbv::wl
