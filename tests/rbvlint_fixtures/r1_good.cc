// Fixture: deterministic randomness — everything seeded explicitly.
#include <cstdint>
#include <random>

namespace rbv::wl {

double
seededDelay(std::uint64_t seed)
{
    std::mt19937_64 engine(seed); // explicit seed: fine
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine);
}

} // namespace rbv::wl
