// Fixture: R2 violations — hidden shared state in simulator code.
#include <cstdint>
#include <vector>

namespace rbv::sim {

std::vector<int> gRegistry; // namespace-scope mutable

static std::uint64_t gCalls = 0; // static mutable

int
nextTag()
{
    static int counter = 0; // function-local static mutable
    ++gCalls;
    gRegistry.push_back(counter);
    return ++counter;
}

} // namespace rbv::sim
