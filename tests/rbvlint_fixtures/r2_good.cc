// Fixture: R2-clean — constants and explicit state only.
#include <cstdint>
#include <vector>

namespace rbv::sim {

constexpr int MaxTags = 64;
static const double DefaultGain = 0.5;

struct TagPool
{
    std::vector<int> tags; // instance state: fine

    static int
    capacity()
    {
        return MaxTags;
    }

    int
    next()
    {
        tags.push_back(static_cast<int>(tags.size()));
        return tags.back();
    }
};

double
gain()
{
    static constexpr double bonus = 0.1; // constexpr static: fine
    return DefaultGain + bonus;
}

} // namespace rbv::sim
