// Library TU (linted under src/wl/helpers.cc) with mutable shared
// state. On its own it is outside the per-file R2 directories and
// clean; paired with r2_reach_runner.cc the call from run() makes it
// reachable from the parallel runner and both variables are flagged.
namespace wl {

int counter = 0; // file-scope mutable: flagged when reachable

int
helperStep()
{
    static int calls = 0; // mutable static local: flagged when reachable
    ++calls;
    ++counter;
    return calls;
}

int
unrelated(int x)
{
    return x + 1;
}

} // namespace wl
