// Synthetic parallel-runner TU (linted under src/exp/runner.cc): its
// functions are the reachability roots for the tree-wide R2 pass.
namespace exp {

void
run()
{
    void helperStep();
    helperStep();
}

} // namespace exp
