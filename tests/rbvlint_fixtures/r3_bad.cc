// Fixture: R3 violations — stray output in library code.
#include <cstdio>
#include <iostream>

namespace rbv::core {

void
debugDump(double cpi)
{
    std::cout << "cpi=" << cpi << "\n";
    printf("cpi=%f\n", cpi);
}

} // namespace rbv::core
