// Fixture: R3-clean — diagnostics go to a caller-supplied stream.
#include <ostream>

namespace rbv::core {

void
describe(std::ostream &os, double cpi)
{
    os << "cpi=" << cpi << "\n"; // injected sink: fine
}

} // namespace rbv::core
