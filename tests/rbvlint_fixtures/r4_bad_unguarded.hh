// Fixture: R4 violation — header without an include guard.
#include <vector>

namespace rbv::sim {

struct Widget
{
    std::vector<int> parts;
};

} // namespace rbv::sim
