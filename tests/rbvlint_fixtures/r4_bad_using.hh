// Fixture: R4 violation — using namespace at header scope.
#ifndef RBVLINT_FIXTURE_R4_BAD_USING_HH
#define RBVLINT_FIXTURE_R4_BAD_USING_HH

#include <string>

using namespace std; // leaks into every includer

namespace rbv::sim {

struct Label
{
    string text;
};

} // namespace rbv::sim

#endif // RBVLINT_FIXTURE_R4_BAD_USING_HH
