// Fixture: R4-clean — guarded, using-directives confined to bodies.
#ifndef RBVLINT_FIXTURE_R4_GOOD_HH
#define RBVLINT_FIXTURE_R4_GOOD_HH

#include <string>

namespace rbv::sim {

struct Label
{
    std::string text;

    std::size_t
    width() const
    {
        using namespace std::string_literals; // function scope: fine
        return text.size() + "!"s.size();
    }
};

} // namespace rbv::sim

#endif // RBVLINT_FIXTURE_R4_GOOD_HH
