// Fixture: R5 violations — unit-less integer duration/size fields.
#ifndef RBVLINT_FIXTURE_R5_BAD_HH
#define RBVLINT_FIXTURE_R5_BAD_HH

#include <cstdint>

namespace rbv::sim {

struct FlushConfig
{
    std::uint64_t flushInterval = 0; // cycles? us? nobody knows
    int replyTimeout = 250;
    std::size_t bufferCapacity = 4096;
};

} // namespace rbv::sim

#endif // RBVLINT_FIXTURE_R5_BAD_HH
