// Fixture: R5-clean — units spelled out, non-integers untouched.
#ifndef RBVLINT_FIXTURE_R5_GOOD_HH
#define RBVLINT_FIXTURE_R5_GOOD_HH

#include <cstdint>

namespace rbv::sim {

struct FlushConfig
{
    std::uint64_t flushIntervalCycles = 0;
    int replyTimeoutUs = 250;
    std::size_t bufferCapacityBytes = 4096;
    double decayRatio = 0.5;  // not an integer: no suffix needed
    int retries = 3;          // not a duration/size: fine
};

} // namespace rbv::sim

#endif // RBVLINT_FIXTURE_R5_GOOD_HH
