// R6 fixture: catch (...) blocks that swallow the exception.

int
empty_swallow()
{
    try {
        work();
    } catch (...) {
    }
    return 0;
}

int
swallow_with_return()
{
    try {
        work();
    } catch (...) {
        return -1;
    }
    return 0;
}

void
swallow_in_loop()
{
    for (int i = 0; i < 4; ++i) {
        try {
            work();
        } catch (...) {
            continue;
        }
    }
}
