// R6 fixture: catch blocks that handle, record, or rethrow.

void
rethrows()
{
    try {
        work();
    } catch (...) {
        throw;
    }
}

bool
records_failure()
{
    bool failed = false;
    try {
        work();
    } catch (...) {
        failed = true;
    }
    return failed;
}

void
calls_handler()
{
    try {
        work();
    } catch (...) {
        reportFailure();
    }
}

void
typed_catch_is_fine()
{
    try {
        work();
    } catch (const std::exception &e) {
        (void)e;
    }
}
