// R7-det-iter positives: iteration over unordered containers in
// result-bearing code (linted under the virtual path
// src/core/model/fixture.cc, which makes every function here a
// result-bearing root).
#include <unordered_map>

namespace model {

class Agg
{
  public:
    int
    total()
    {
        int sum = 0;
        for (const auto &kv : counts) // Site A: field iteration
            sum += kv.second;
        return sum;
    }

  private:
    std::unordered_map<int, int> counts; // Site B: unordered field
};

int
localIter()
{
    std::unordered_map<int, int> table;
    table[1] = 2;
    int s = 0;
    for (const auto &kv : table) // Site A: local iteration
        s += kv.second;
    return s;
}

} // namespace model
