// R7-det-iter negatives: ordered containers iterate fine, lookups
// into unordered containers without iteration are fine, and the
// inline pragma covers a deliberate exception.
#include <map>
#include <unordered_map>

namespace model {

class Agg
{
  public:
    int
    total()
    {
        int sum = 0;
        for (const auto &kv : counts) // ordered: deterministic
            sum += kv.second;
        return sum + cache.count(0); // lookup only, no iteration
    }

  private:
    std::map<int, int> counts;
    // Never iterated (lookup cache); order cannot leak out.
    std::unordered_map<int, int> cache; // rbvlint: allow(R7)
};

} // namespace model
