// R8-lock-discipline positives: a guarded field touched without the
// mutex, and an annotation naming a non-mutex member.
#include <mutex>
#include <vector>

namespace obs {

class Registry
{
  public:
    void
    add(int k)
    {
        std::lock_guard<std::mutex> g(mu);
        items.push_back(k);
    }

    int
    unsafeSize() const
    {
        return static_cast<int>(items.size()); // no lock: violation
    }

  private:
    std::mutex mu;
    std::vector<int> items; // rbvlint: guarded_by(mu)
    int epoch = 0;          // rbvlint: guarded_by(items)  <- not a mutex
};

} // namespace obs
