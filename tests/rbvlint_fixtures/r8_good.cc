// R8-lock-discipline negatives: every touch holds the mutex, the
// constructor initializes freely, and *Locked helpers are exempt by
// contract (their callers hold the lock).
#include <mutex>
#include <vector>

namespace obs {

class Registry
{
  public:
    Registry() { items.reserve(8); } // ctor exempt

    void
    add(int k)
    {
        std::lock_guard<std::mutex> g(mu);
        items.push_back(k);
    }

    int
    size() const
    {
        std::lock_guard<std::mutex> g(mu);
        return sizeLocked();
    }

  private:
    int
    sizeLocked() const // *Locked: caller holds mu
    {
        return static_cast<int>(items.size());
    }

    mutable std::mutex mu;
    std::vector<int> items; // rbvlint: guarded_by(mu)
};

} // namespace obs
