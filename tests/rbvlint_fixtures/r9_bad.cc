// R9-rng-stream positives (linted under src/wl/fixture.cc): shared,
// unseeded, and static engines all break per-job stream isolation.
#include "stats/rng.hh"

namespace wl {

stats::Rng g_rng{42}; // shared across jobs: violation at the decl

double
drawShared()
{
    return g_rng.uniform(); // draw on the shared engine: violation
}

class Worker
{
  public:
    Worker() {}

    double
    step()
    {
        return rng.uniform(); // engine field, no seed ctor: violation
    }

  private:
    stats::Rng rng;
};

double
drawStatic()
{
    static stats::Rng r{99};
    return r.uniform(); // static local engine: violation
}

double
drawUnseeded()
{
    stats::Rng r;
    return r.uniform(); // unseeded engine: violation
}

} // namespace wl
