// R9-rng-stream negatives: the three sanctioned stream shapes — a
// caller-owned parameter, a (seed,id)-keyed local, and an engine
// field of a class that takes its seed at construction.
#include "stats/rng.hh"

namespace wl {

double
drawParam(stats::Rng &rng)
{
    return rng.uniform(); // caller owns the stream
}

class Keyed
{
  public:
    explicit Keyed(std::uint64_t seed) : rng(seed) {}

    double
    step()
    {
        return rng.uniform(); // field of a seed-taking class
    }

  private:
    stats::Rng rng;
};

double
drawLocal(std::uint64_t seed, std::uint64_t id)
{
    stats::Rng r{seed ^ id};
    return r.uniform(); // keyed local stream
}

} // namespace wl
