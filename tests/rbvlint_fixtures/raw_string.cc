// Raw-string lexing fixture: the literals below contain quotes,
// comment lookalikes, and rule bait. If the lexer desyncs on any of
// them, the violation count changes — either the bait fires or the
// genuine call to rand() at the end goes unseen.
namespace demo {

const char *kJson =
    R"({"cmd": "rand()", "note": "// not a comment", "q": "\"})";

const char *kDelim = R"xy(quote " close )" still inside)xy";

const char *kMultiline = R"(line one
line two with srand(7) bait
line three)";

int
bad()
{
    return rand(); // the one real violation in this file
}

} // namespace demo
