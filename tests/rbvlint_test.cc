/**
 * @file
 * rbvlint rule-engine tests: every rule must fire on its seeded bad
 * fixture, stay silent on the good one, and honor both escape
 * mechanisms (inline pragma and allowlist).
 *
 * Fixtures live in tests/rbvlint_fixtures/ (path injected via
 * RBVLINT_FIXTURE_DIR). Rule applicability depends on the repo path
 * a file pretends to live at, so each case pairs fixture content
 * with a virtual src/ path.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "rbvlint/rules.hh"

namespace {

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(RBVLINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<rbvlint::Violation>
lintFixture(const std::string &name, const std::string &virtual_path,
            const rbvlint::Allowlist &allowlist = {})
{
    return rbvlint::lintFile(virtual_path, readFixture(name),
                             allowlist);
}

std::set<std::string>
rulesIn(const std::vector<rbvlint::Violation> &vs)
{
    std::set<std::string> rules;
    for (const auto &v : vs)
        rules.insert(v.rule);
    return rules;
}

} // namespace

struct FixtureCase
{
    const char *fixture;
    const char *virtualPath;
    const char *expectedRule; ///< nullptr: must be clean.
    int minViolations;
};

class RuleFixtures : public ::testing::TestWithParam<FixtureCase>
{
};

TEST_P(RuleFixtures, FiresExactlyOnSeededRule)
{
    const FixtureCase &c = GetParam();
    const auto vs = lintFixture(c.fixture, c.virtualPath);
    if (c.expectedRule == nullptr) {
        EXPECT_TRUE(vs.empty())
            << c.fixture << " should be clean; first: "
            << (vs.empty() ? "" : vs[0].rule + " " + vs[0].message);
        return;
    }
    EXPECT_GE(static_cast<int>(vs.size()), c.minViolations)
        << c.fixture;
    const auto rules = rulesIn(vs);
    EXPECT_EQ(rules, std::set<std::string>{c.expectedRule})
        << c.fixture << " fired unexpected rules";
    for (const auto &v : vs) {
        EXPECT_GT(v.line, 0);
        EXPECT_FALSE(v.message.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Rules, RuleFixtures,
    ::testing::Values(
        FixtureCase{"r1_bad.cc", "src/wl/fixture.cc", "R1-nondet", 5},
        FixtureCase{"r1_good.cc", "src/wl/fixture.cc", nullptr, 0},
        FixtureCase{"r2_bad.cc", "src/sim/fixture.cc",
                    "R2-global-state", 3},
        FixtureCase{"r2_good.cc", "src/sim/fixture.cc", nullptr, 0},
        FixtureCase{"r3_bad.cc", "src/core/fixture.cc", "R3-io", 2},
        FixtureCase{"r3_good.cc", "src/core/fixture.cc", nullptr, 0},
        FixtureCase{"r4_bad_unguarded.hh", "src/sim/fixture.hh",
                    "R4-include", 1},
        FixtureCase{"r4_bad_using.hh", "src/sim/fixture.hh",
                    "R4-include", 1},
        FixtureCase{"r4_good.hh", "src/sim/fixture.hh", nullptr, 0},
        FixtureCase{"r5_bad.hh", "src/sim/fixture.hh", "R5-units", 3},
        FixtureCase{"r5_good.hh", "src/sim/fixture.hh", nullptr, 0},
        FixtureCase{"r6_bad.cc", "src/core/fixture.cc", "R6-swallow",
                    3},
        FixtureCase{"r6_good.cc", "src/core/fixture.cc", nullptr, 0},
        FixtureCase{"allow_inline.cc", "src/sim/fixture.cc", nullptr,
                    0}),
    [](const auto &info) {
        std::string name = info.param.fixture;
        for (char &ch : name)
            if (ch == '.')
                ch = '_';
        return name;
    });

TEST(RuleScoping, RulesRespectDirectoryBoundaries)
{
    // The same content that trips R1/R3 inside src/ is legal in
    // bench/ (benches print tables and may time themselves).
    const auto vs = lintFixture("r3_bad.cc", "bench/fixture.cc");
    EXPECT_TRUE(vs.empty());

    // R2/R5 apply to the simulator layers, not to src/exp or src/wl.
    const auto exp = lintFixture("r2_bad.cc", "src/exp/fixture.cc");
    EXPECT_TRUE(exp.empty());
    const auto units = lintFixture("r5_bad.hh", "src/exp/fixture.hh");
    EXPECT_TRUE(rulesIn(units).count("R5-units") == 0);
}

TEST(Allowlist, SuppressesByRuleAndPath)
{
    rbvlint::Allowlist allow;
    std::string err;
    ASSERT_TRUE(rbvlint::Allowlist::parse(
        "# comment\n"
        "R3 src/core/fixture.cc\n"
        "units src/sim/\n",
        allow, err))
        << err;

    EXPECT_TRUE(lintFixture("r3_bad.cc", "src/core/fixture.cc", allow)
                    .empty());
    // Different path: still fires.
    EXPECT_FALSE(
        lintFixture("r3_bad.cc", "src/core/other.cc", allow).empty());
    // Directory-prefix entry.
    EXPECT_TRUE(lintFixture("r5_bad.hh", "src/sim/fixture.hh", allow)
                    .empty());
    // The allowlist only silences its own rule.
    EXPECT_FALSE(
        lintFixture("r2_bad.cc", "src/sim/fixture.cc", allow).empty());
}

TEST(Allowlist, RejectsMalformedAndUnknownRules)
{
    rbvlint::Allowlist allow;
    std::string err;
    EXPECT_FALSE(rbvlint::Allowlist::parse("R3\n", allow, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(
        rbvlint::Allowlist::parse("R42 src/foo.cc\n", allow, err));
    EXPECT_FALSE(
        rbvlint::Allowlist::parse("R3 a b c\n", allow, err));
    // Duplicate entries are rejected (they hide stale suppressions).
    EXPECT_FALSE(rbvlint::Allowlist::parse(
        "R3 src/foo.cc\nR3 src/foo.cc\n", allow, err));
    EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(RuleIds, SpecMatchingAcceptsAllSpellings)
{
    EXPECT_TRUE(rbvlint::ruleMatches("*", "R2-global-state"));
    EXPECT_TRUE(rbvlint::ruleMatches("R2", "R2-global-state"));
    EXPECT_TRUE(
        rbvlint::ruleMatches("global-state", "R2-global-state"));
    EXPECT_TRUE(
        rbvlint::ruleMatches("R2-global-state", "R2-global-state"));
    EXPECT_FALSE(rbvlint::ruleMatches("R1", "R2-global-state"));
    EXPECT_FALSE(rbvlint::ruleMatches("units", "R2-global-state"));
    EXPECT_TRUE(rbvlint::ruleMatches("R7", "R7-det-iter"));
    EXPECT_TRUE(rbvlint::ruleMatches("det-iter", "R7-det-iter"));
    EXPECT_EQ(rbvlint::allRules().size(), 9u);
}

TEST(Determinism, RepeatedLintsAreIdentical)
{
    const std::string text = readFixture("r2_bad.cc");
    const auto a = rbvlint::lintFile("src/sim/fixture.cc", text, {});
    const auto b = rbvlint::lintFile("src/sim/fixture.cc", text, {});
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].line, b[i].line);
        EXPECT_EQ(a[i].rule, b[i].rule);
        EXPECT_EQ(a[i].message, b[i].message);
    }
}
