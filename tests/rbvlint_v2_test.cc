/**
 * @file
 * rbvlint v2 tests: raw-string lexing, the per-TU parser, the
 * whole-tree call graph, the interprocedural passes (R7/R8/R9 and
 * reachability-R2), and the baseline machinery.
 *
 * Fixtures live in tests/rbvlint_fixtures/ (path injected via
 * RBVLINT_FIXTURE_DIR). The interprocedural rules decide
 * applicability and reachability from the virtual repo path each
 * fixture pretends to live at, so tests pair fixture files with
 * virtual src/ paths, mirroring the per-file suite.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rbvlint/baseline.hh"
#include "rbvlint/callgraph.hh"
#include "rbvlint/parser.hh"
#include "rbvlint/passes.hh"
#include "rbvlint/rules.hh"

namespace {

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(RBVLINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Build TuUnits for (fixture, virtual path) pairs. */
std::vector<rbvlint::TuUnit>
makeUnits(
    const std::vector<std::pair<std::string, std::string>> &specs)
{
    std::vector<rbvlint::TuUnit> units;
    for (const auto &[fixture, path] : specs)
        units.push_back(rbvlint::makeUnit(path, readFixture(fixture)));
    return units;
}

/** Run only the interprocedural passes over the given units. */
std::vector<rbvlint::Violation>
treeLint(const std::vector<rbvlint::TuUnit> &units,
         const rbvlint::Allowlist &allowlist = {})
{
    const rbvlint::CallGraph graph(units);
    return rbvlint::runTreePasses(units, graph, allowlist);
}

int
countRule(const std::vector<rbvlint::Violation> &vs,
          const std::string &rule)
{
    int n = 0;
    for (const auto &v : vs)
        if (v.rule == rule)
            ++n;
    return n;
}

const rbvlint::FunctionDef *
findFn(const rbvlint::TuSymbols &syms, const std::string &name)
{
    for (const auto &f : syms.functions)
        if (f.name == name)
            return &f;
    return nullptr;
}

const rbvlint::FieldDef *
findFd(const rbvlint::TuSymbols &syms, const std::string &name)
{
    for (const auto &f : syms.fields)
        if (f.name == name)
            return &f;
    return nullptr;
}

} // namespace

// ---- Lexer: raw strings must not desync tokenization. -------------

TEST(RawStrings, ContentsAreOpaqueAndLexingStaysInSync)
{
    const auto vs = rbvlint::lintFile("src/wl/fixture.cc",
                                      readFixture("raw_string.cc"), {});
    // Exactly the one genuine rand() call fires; none of the bait
    // inside the raw strings (rand(), srand, //-lookalikes, quotes)
    // leaks out as tokens.
    ASSERT_EQ(vs.size(), 1u)
        << (vs.empty() ? "" : vs[0].message);
    EXPECT_EQ(vs[0].rule, "R1-nondet");
    EXPECT_GT(vs[0].line, 15); // after all three literals
}

TEST(RawStrings, DelimiterVariantsLexAsSingleStrings)
{
    const auto lr = rbvlint::lex(
        "auto a = R\"(plain \" quote // slash)\";\n"
        "auto b = R\"xy(has )\" inside)xy\";\n"
        "auto c = u8R\"(utf)\";\n"
        "int after = 1;\n");
    int strings = 0;
    bool sawAfter = false;
    for (const auto &t : lr.tokens) {
        if (t.kind == rbvlint::Tok::String)
            ++strings;
        if (t.kind == rbvlint::Tok::Ident && t.text == "after")
            sawAfter = true;
    }
    EXPECT_EQ(strings, 3);
    EXPECT_TRUE(sawAfter);
}

// ---- Parser: symbol tables. ---------------------------------------

TEST(Parser, ExtractsFieldsGuardsAndLocks)
{
    const auto unit = rbvlint::makeUnit("src/obs/fixture.cc",
                                        readFixture("r8_bad.cc"));
    const auto *items = findFd(unit.syms, "items");
    ASSERT_NE(items, nullptr);
    EXPECT_EQ(items->className, "Registry");
    EXPECT_EQ(items->guardedBy, "mu");
    EXPECT_FALSE(items->mutex);

    const auto *mu = findFd(unit.syms, "mu");
    ASSERT_NE(mu, nullptr);
    EXPECT_TRUE(mu->mutex);

    const auto *add = findFn(unit.syms, "add");
    ASSERT_NE(add, nullptr);
    EXPECT_EQ(add->className, "Registry");
    ASSERT_EQ(add->locksHeld.size(), 1u);
    EXPECT_EQ(add->locksHeld[0], "mu");

    const auto *unsafeSize = findFn(unit.syms, "unsafeSize");
    ASSERT_NE(unsafeSize, nullptr);
    EXPECT_TRUE(unsafeSize->locksHeld.empty());
}

TEST(Parser, ExtractsEnginesSeedingAndStatics)
{
    const auto bad = rbvlint::makeUnit("src/wl/fixture.cc",
                                       readFixture("r9_bad.cc"));
    ASSERT_EQ(bad.syms.nsMutables.size(), 1u);
    EXPECT_EQ(bad.syms.nsMutables[0].name, "g_rng");
    EXPECT_TRUE(bad.syms.nsMutables[0].engine);

    const auto *drawStatic = findFn(bad.syms, "drawStatic");
    ASSERT_NE(drawStatic, nullptr);
    ASSERT_EQ(drawStatic->locals.size(), 1u);
    EXPECT_TRUE(drawStatic->locals[0].isStatic);
    ASSERT_EQ(drawStatic->draws.size(), 1u);
    EXPECT_EQ(drawStatic->draws[0].method, "uniform");

    const auto good = rbvlint::makeUnit("src/wl/fixture.cc",
                                        readFixture("r9_good.cc"));
    bool keyedSeeded = false;
    for (const auto &c : good.syms.classes)
        if (c.name == "Keyed")
            keyedSeeded = c.seedCtor;
    EXPECT_TRUE(keyedSeeded);
}

// ---- Call graph: cross-TU resolution and closure. -----------------

TEST(CallGraphTest, ClosureCrossesTusAndExcludesOrphans)
{
    const auto units =
        makeUnits({{"callgraph_a.cc", "src/exp/cg_a.cc"},
                   {"callgraph_b.cc", "src/wl/cg_b.cc"}});
    const rbvlint::CallGraph graph(units);

    const auto &roots = graph.byName("rootFn");
    ASSERT_EQ(roots.size(), 1u);
    const auto closure = graph.calleeClosure(roots);

    auto inClosure = [&](const std::string &name) {
        for (std::size_t id : graph.byName(name))
            if (closure[id])
                return true;
        return false;
    };
    EXPECT_TRUE(inClosure("rootFn"));
    EXPECT_TRUE(inClosure("midFn"));
    EXPECT_TRUE(inClosure("leafFn"));
    EXPECT_FALSE(inClosure("orphanFn"));
}

// ---- R7-det-iter. -------------------------------------------------

TEST(R7DetIter, FiresOnUnorderedIterationInResultBearingCode)
{
    const auto vs = treeLint(
        makeUnits({{"r7_bad.cc", "src/core/model/fixture.cc"}}));
    // Two iteration sites plus the standing field hazard.
    EXPECT_EQ(countRule(vs, "R7-det-iter"), 3);
}

TEST(R7DetIter, SilentOnOrderedAndPragmaSuppressed)
{
    const auto vs = treeLint(
        makeUnits({{"r7_good.cc", "src/core/model/fixture.cc"}}));
    EXPECT_EQ(countRule(vs, "R7-det-iter"), 0);
}

TEST(R7DetIter, SilentOutsideResultBearingCode)
{
    // The same content in a leaf directory no result-bearing root
    // calls into stays unflagged.
    const auto vs =
        treeLint(makeUnits({{"r7_bad.cc", "src/wl/fixture.cc"}}));
    EXPECT_EQ(countRule(vs, "R7-det-iter"), 0);
}

// ---- R8-lock-discipline. ------------------------------------------

TEST(R8LockDiscipline, FiresOnUnlockedTouchAndBadMutexName)
{
    const auto vs =
        treeLint(makeUnits({{"r8_bad.cc", "src/obs/fixture.cc"}}));
    EXPECT_EQ(countRule(vs, "R8-lock-discipline"), 2);
}

TEST(R8LockDiscipline, SilentWhenEveryTouchHoldsTheMutex)
{
    const auto vs =
        treeLint(makeUnits({{"r8_good.cc", "src/obs/fixture.cc"}}));
    EXPECT_EQ(countRule(vs, "R8-lock-discipline"), 0);
}

// ---- R9-rng-stream. -----------------------------------------------

TEST(R9RngStream, FiresOnSharedUnseededAndStaticEngines)
{
    const auto vs =
        treeLint(makeUnits({{"r9_bad.cc", "src/wl/fixture.cc"}}));
    // ns-scope decl, draw on it, unseeded-class field draw, static
    // local draw, unseeded local draw.
    EXPECT_EQ(countRule(vs, "R9-rng-stream"), 5);
}

TEST(R9RngStream, SilentOnSanctionedStreamShapes)
{
    const auto vs =
        treeLint(makeUnits({{"r9_good.cc", "src/wl/fixture.cc"}}));
    EXPECT_EQ(countRule(vs, "R9-rng-stream"), 0);
}

// ---- Reachability-upgraded R2. ------------------------------------

TEST(R2Reach, FlagsStateReachableFromTheRunner)
{
    const auto vs = treeLint(
        makeUnits({{"r2_reach_runner.cc", "src/exp/runner.cc"},
                   {"r2_reach_helper.cc", "src/wl/helpers.cc"}}));
    // The file-scope counter and the static local in helperStep.
    EXPECT_EQ(countRule(vs, "R2-global-state"), 2);
}

TEST(R2Reach, SilentWithoutAReachableRoot)
{
    const auto vs = treeLint(
        makeUnits({{"r2_reach_helper.cc", "src/wl/helpers.cc"}}));
    EXPECT_EQ(countRule(vs, "R2-global-state"), 0);
}

TEST(R2Reach, AllowlistGrandfathersByPath)
{
    rbvlint::Allowlist allow;
    std::string err;
    ASSERT_TRUE(rbvlint::Allowlist::parse("R2 src/wl/helpers.cc\n",
                                          allow, err))
        << err;
    const auto vs = treeLint(
        makeUnits({{"r2_reach_runner.cc", "src/exp/runner.cc"},
                   {"r2_reach_helper.cc", "src/wl/helpers.cc"}}),
        allow);
    EXPECT_EQ(countRule(vs, "R2-global-state"), 0);
    EXPECT_TRUE(allow.unusedEntries().empty());
}

// ---- Full-tree analysis entry point. ------------------------------

TEST(AnalyzeTree, MergesPerFileAndTreeFindingsSorted)
{
    const auto units = makeUnits(
        {{"r9_bad.cc", "src/wl/fixture.cc"},
         {"r2_reach_runner.cc", "src/exp/runner.cc"},
         {"r2_reach_helper.cc", "src/wl/helpers.cc"}});
    const auto vs = rbvlint::analyzeTree(units, {});
    EXPECT_GE(countRule(vs, "R9-rng-stream"), 5);
    EXPECT_EQ(countRule(vs, "R2-global-state"), 2);
    for (std::size_t i = 1; i < vs.size(); ++i) {
        const bool ordered =
            vs[i - 1].path < vs[i].path ||
            (vs[i - 1].path == vs[i].path &&
             vs[i - 1].line <= vs[i].line);
        EXPECT_TRUE(ordered) << "unsorted at index " << i;
    }
}

// ---- Baseline. ----------------------------------------------------

TEST(BaselineTest, ParseRejectsLinesWithoutTwoSeparators)
{
    rbvlint::Baseline b;
    std::string err;
    EXPECT_TRUE(rbvlint::Baseline::parse(
        "# comment\n\nR1-nondet|src/a.cc|msg\n", b, err));
    EXPECT_EQ(b.size(), 1u);

    rbvlint::Baseline bad;
    EXPECT_FALSE(rbvlint::Baseline::parse("R1-nondet src/a.cc\n",
                                          bad, err));
    EXPECT_FALSE(err.empty());
}

TEST(BaselineTest, MatchSplitsFreshBaselinedAndStale)
{
    rbvlint::Baseline b;
    std::string err;
    ASSERT_TRUE(rbvlint::Baseline::parse(
        "R1-nondet|src/a.cc|old finding\n"
        "R2-global-state|src/b.cc|gone finding\n",
        b, err));

    const std::vector<rbvlint::Violation> findings = {
        {"src/a.cc", 10, "R1-nondet", "old finding"},
        {"src/a.cc", 20, "R1-nondet", "new finding"},
    };
    const auto m = b.match(findings);
    ASSERT_EQ(m.baselined.size(), 1u);
    EXPECT_EQ(m.baselined[0].line, 10);
    ASSERT_EQ(m.fresh.size(), 1u);
    EXPECT_EQ(m.fresh[0].message, "new finding");
    ASSERT_EQ(m.stale.size(), 1u);
    EXPECT_NE(m.stale[0].find("gone finding"), std::string::npos);
}

TEST(BaselineTest, DuplicateEntriesMatchMultisetStyle)
{
    rbvlint::Baseline b;
    b.add({"src/a.cc", 1, "R1-nondet", "dup"});
    b.add({"src/a.cc", 2, "R1-nondet", "dup"});

    const std::vector<rbvlint::Violation> three = {
        {"src/a.cc", 1, "R1-nondet", "dup"},
        {"src/a.cc", 2, "R1-nondet", "dup"},
        {"src/a.cc", 3, "R1-nondet", "dup"},
    };
    const auto m = b.match(three);
    EXPECT_EQ(m.baselined.size(), 2u);
    EXPECT_EQ(m.fresh.size(), 1u);
    EXPECT_TRUE(m.stale.empty());
}

TEST(BaselineTest, SerializeRoundTripsSorted)
{
    rbvlint::Baseline b;
    b.add({"src/z.cc", 1, "R9-rng-stream", "zzz"});
    b.add({"src/a.cc", 1, "R1-nondet", "aaa"});
    const std::string text = b.serialize();

    rbvlint::Baseline again;
    std::string err;
    ASSERT_TRUE(rbvlint::Baseline::parse(text, again, err)) << err;
    EXPECT_EQ(again.size(), 2u);
    EXPECT_EQ(again.serialize(), text);
    EXPECT_LT(text.find("R1-nondet|src/a.cc|aaa"),
              text.find("R9-rng-stream|src/z.cc|zzz"));
}

// ---- Allowlist v2: unused-entry reporting. ------------------------

TEST(AllowlistV2, ReportsEntriesThatNeverFired)
{
    rbvlint::Allowlist allow;
    std::string err;
    ASSERT_TRUE(rbvlint::Allowlist::parse(
        "R9 src/wl/fixture.cc\n"
        "R3 src/never/touched.cc\n",
        allow, err))
        << err;

    const auto vs = treeLint(
        makeUnits({{"r9_bad.cc", "src/wl/fixture.cc"}}), allow);
    EXPECT_EQ(countRule(vs, "R9-rng-stream"), 0);

    const auto unused = allow.unusedEntries();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "R3 src/never/touched.cc");
}
