/**
 * @file
 * Tests of the parallel experiment engine: deterministic grid
 * expansion, bit-identical parallel/serial merges, and the replicate
 * aggregator's statistics.
 */

#include <cmath>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "exp/aggregate.hh"
#include "exp/runner.hh"
#include "exp/scenario.hh"

using namespace rbv;
using namespace rbv::exp;

namespace {

/** A fast scenario grid: 2 variants x 2 replicates of a tiny TPCC. */
ScenarioGrid
smallGrid()
{
    ScenarioConfig base;
    base.app = wl::App::Tpcc;
    base.seed = 17;
    base.requests = 40;
    base.warmup = 4;
    base.numCores = 2;
    ScenarioGrid grid(base);
    grid.variants(
            {{"interrupt", nullptr},
             {"syscall",
              [](ScenarioConfig &c) {
                  c.sampler = SamplerKind::Syscall;
                  c.minGapUs = 20.0;
              }}})
        .replicates(2);
    return grid;
}

void
expectIdentical(const std::vector<JobResult> &a,
                const std::vector<JobResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("job " + a[i].key);
        EXPECT_EQ(a[i].key, b[i].key);
        const ScenarioResult &ra = a[i].result;
        const ScenarioResult &rb = b[i].result;

        EXPECT_EQ(ra.wallCycles, rb.wallCycles);
        EXPECT_EQ(ra.busyCycles, rb.busyCycles);
        EXPECT_EQ(ra.samplerStats.overheadCycles,
                  rb.samplerStats.overheadCycles);
        EXPECT_EQ(ra.samplerStats.totalSamples(),
                  rb.samplerStats.totalSamples());

        ASSERT_EQ(ra.records.size(), rb.records.size());
        for (std::size_t r = 0; r < ra.records.size(); ++r) {
            const RequestRecord &x = ra.records[r];
            const RequestRecord &y = rb.records[r];
            EXPECT_EQ(x.id, y.id);
            EXPECT_EQ(x.className, y.className);
            EXPECT_EQ(x.classId, y.classId);
            EXPECT_EQ(x.injected, y.injected);
            EXPECT_EQ(x.completed, y.completed);
            EXPECT_EQ(x.totals.cycles, y.totals.cycles);
            EXPECT_EQ(x.totals.instructions, y.totals.instructions);
            EXPECT_EQ(x.totals.l2Refs, y.totals.l2Refs);
            EXPECT_EQ(x.totals.l2Misses, y.totals.l2Misses);
            EXPECT_EQ(x.syscalls, y.syscalls);
            ASSERT_EQ(x.timeline.periods.size(),
                      y.timeline.periods.size());
            for (std::size_t p = 0; p < x.timeline.periods.size();
                 ++p) {
                const auto &pa = x.timeline.periods[p];
                const auto &pb = y.timeline.periods[p];
                EXPECT_EQ(pa.instructions, pb.instructions);
                EXPECT_EQ(pa.cycles, pb.cycles);
                EXPECT_EQ(pa.l2Refs, pb.l2Refs);
                EXPECT_EQ(pa.l2Misses, pb.l2Misses);
                EXPECT_EQ(pa.wallStart, pb.wallStart);
                EXPECT_EQ(pa.trigger, pb.trigger);
            }
        }
    }
}

} // namespace

TEST(ScenarioGrid, ExpandsAxesInDeclarationOrder)
{
    ScenarioConfig base;
    base.seed = 100;
    ScenarioGrid grid(base);
    grid.apps({wl::App::Tpcc, wl::App::Tpch})
        .variants({{"a", nullptr}, {"b", nullptr}})
        .replicates(2, 10);
    const auto jobs = grid.jobs();

    ASSERT_EQ(jobs.size(), 8u);
    // First axis outermost, later axes cycle faster.
    EXPECT_EQ(jobs[0].key, "app=tpcc/var=a/rep=0");
    EXPECT_EQ(jobs[1].key, "app=tpcc/var=a/rep=1");
    EXPECT_EQ(jobs[2].key, "app=tpcc/var=b/rep=0");
    EXPECT_EQ(jobs[3].key, "app=tpcc/var=b/rep=1");
    EXPECT_EQ(jobs[4].key, "app=tpch/var=a/rep=0");
    EXPECT_EQ(jobs[7].key, "app=tpch/var=b/rep=1");

    // Axis mutations land on the configs: app set, seed strided.
    EXPECT_EQ(jobs[0].config.app, wl::App::Tpcc);
    EXPECT_EQ(jobs[4].config.app, wl::App::Tpch);
    EXPECT_EQ(jobs[0].config.seed, 100u);
    EXPECT_EQ(jobs[1].config.seed, 110u);
    EXPECT_EQ(jobs[3].config.seed, 110u);
}

TEST(ScenarioGrid, SweepAndFinalize)
{
    ScenarioGrid grid;
    grid.sweep("period", {5.0, 12.5},
               [](ScenarioConfig &c, double p) {
                   c.samplingPeriodUs = p;
               })
        .finalize([](ScenarioConfig &c) { c.requests = 99; });
    const auto jobs = grid.jobs();

    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].key, "period=5");
    EXPECT_EQ(jobs[1].key, "period=12.5");
    EXPECT_EQ(jobs[0].config.samplingPeriodUs, 5.0);
    EXPECT_EQ(jobs[1].config.samplingPeriodUs, 12.5);
    // Finalizers run after every axis mutation, on every job.
    EXPECT_EQ(jobs[0].config.requests, 99u);
    EXPECT_EQ(jobs[1].config.requests, 99u);
}

TEST(ScenarioGrid, MutatorAllocationsArePrivatePerJob)
{
    // A variant mutator that allocates a resource (e.g. a scheduler
    // policy) must produce a distinct instance for every leaf job,
    // even when later axes (replicates) multiply that variant —
    // sharing would race once the runner goes parallel.
    ScenarioGrid grid;
    grid.variants({{"eased",
                    [](ScenarioConfig &c) {
                        c.policy = std::make_shared<
                            core::ContentionEasingPolicy>(
                            core::ContentionConfig{});
                    }}})
        .replicates(3);
    const auto jobs = grid.jobs();

    ASSERT_EQ(jobs.size(), 3u);
    for (const auto &job : jobs)
        ASSERT_NE(job.config.policy, nullptr);
    EXPECT_NE(jobs[0].config.policy, jobs[1].config.policy);
    EXPECT_NE(jobs[1].config.policy, jobs[2].config.policy);
    EXPECT_NE(jobs[0].config.policy, jobs[2].config.policy);
}

TEST(ScenarioGrid, EmptyGridIsOneBaseJob)
{
    ScenarioConfig base;
    base.requests = 7;
    const auto jobs = ScenarioGrid(base).jobs();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].key, "run");
    EXPECT_EQ(jobs[0].config.requests, 7u);
}

TEST(ParallelRunner, ParallelMergeIsBitIdenticalToSerial)
{
    const auto jobs = smallGrid().jobs();
    ASSERT_EQ(jobs.size(), 4u);

    RunnerOptions serial;
    serial.jobs = 1;
    serial.progress = false;
    RunnerOptions parallel;
    parallel.jobs = 4;
    parallel.progress = false;

    const auto serial_results = ParallelRunner(serial).run(jobs);
    const auto parallel_results = ParallelRunner(parallel).run(jobs);
    expectIdentical(serial_results, parallel_results);

    // And so are two parallel runs (no run-to-run nondeterminism).
    const auto again = ParallelRunner(parallel).run(jobs);
    expectIdentical(parallel_results, again);
}

TEST(ParallelRunner, MapMergesByIndex)
{
    RunnerOptions opts;
    opts.jobs = 4;
    opts.progress = false;
    const auto out = ParallelRunner(opts).map(
        17, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 17u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, ProgressGoesToTheLogStreamOnly)
{
    std::ostringstream log;
    RunnerOptions opts;
    opts.jobs = 2;
    opts.log = &log;

    ScenarioConfig base;
    base.app = wl::App::Tpcc;
    base.requests = 12;
    base.warmup = 2;
    base.numCores = 1;
    const auto results =
        ParallelRunner(opts).run(ScenarioGrid(base).jobs());

    ASSERT_EQ(results.size(), 1u);
    EXPECT_NE(log.str().find("[1/1] run"), std::string::npos);
    EXPECT_GE(results[0].seconds, 0.0);
}

TEST(ParallelRunner, PoisonedJobDoesNotKillTheSweep)
{
    // Job-boundary failure contract: a throwing body is retried the
    // configured number of times, recorded as a failed slot, and the
    // other jobs complete untouched.
    ScenarioConfig base;
    base.app = wl::App::Tpcc;
    base.seed = 17;
    base.requests = 20;
    base.warmup = 2;
    base.numCores = 1;
    ScenarioGrid grid(base);
    grid.replicates(4);
    auto jobs = grid.jobs();
    ASSERT_EQ(jobs.size(), 4u);
    jobs[1].body = [](const ScenarioConfig &) -> ScenarioResult {
        throw std::runtime_error("poisoned job body");
    };

    std::ostringstream log;
    RunnerOptions opts;
    opts.jobs = 2;
    opts.log = &log;
    opts.maxRetries = 1;
    opts.backoffMs = 0.0;
    const auto results = ParallelRunner(opts).run(jobs);

    ASSERT_EQ(results.size(), 4u);
    EXPECT_TRUE(results[1].failed);
    EXPECT_NE(results[1].error.find("poisoned job body"),
              std::string::npos);
    EXPECT_EQ(results[1].attempts, 2); // 1 try + 1 retry
    EXPECT_EQ(tryResultFor(results, jobs[1].key), nullptr);

    for (std::size_t i : {std::size_t{0}, std::size_t{2},
                          std::size_t{3}}) {
        SCOPED_TRACE("job " + results[i].key);
        EXPECT_FALSE(results[i].failed);
        EXPECT_EQ(results[i].attempts, 1);
        const ScenarioResult *r =
            tryResultFor(results, results[i].key);
        ASSERT_NE(r, nullptr);
        EXPECT_FALSE(r->records.empty());
    }

    // Degraded exit code and a degraded-report note on the log.
    EXPECT_EQ(exitCodeFor(results), 3);
    EXPECT_NE(log.str().find("FAILED after 2 attempt(s)"),
              std::string::npos);
    EXPECT_NE(log.str().find("report is degraded"),
              std::string::npos);
}

TEST(ParallelRunner, ResultForFindsKeysAndThrowsOnMiss)
{
    std::vector<JobResult> results(2);
    results[0].key = "app=tpcc";
    results[1].key = "app=tpch";
    results[1].result.wallCycles = 42;

    EXPECT_EQ(resultFor(results, "app=tpch").wallCycles, 42);
    EXPECT_THROW(resultFor(results, "app=rubis"), std::out_of_range);
}

TEST(ReplicateSummary, MatchesHandComputedStatistics)
{
    ReplicateSummary agg;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        agg.add("metric", v);

    const MetricSummary s = agg.get("metric");
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    // Sample variance of {1,2,3,4}: (2.25+0.25+0.25+2.25)/3 = 5/3.
    EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
    EXPECT_NEAR(s.stderrOfMean, std::sqrt(5.0 / 3.0) / 2.0, 1e-12);
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(agg.mean("metric"), 2.5);
}

TEST(ReplicateSummary, TracksNamesAndHandlesMisses)
{
    ReplicateSummary agg;
    agg.add("b", 1.0);
    agg.add("a", 2.0);
    agg.add("b", 3.0);

    EXPECT_TRUE(agg.has("a"));
    EXPECT_FALSE(agg.has("c"));
    const auto names = agg.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "b"); // insertion order, not sorted
    EXPECT_EQ(names[1], "a");

    const MetricSummary miss = agg.get("c");
    EXPECT_EQ(miss.count, 0u);
    EXPECT_EQ(miss.mean, 0.0);

    // A single replicate has no spread.
    const MetricSummary one = agg.get("a");
    EXPECT_EQ(one.count, 1u);
    EXPECT_EQ(one.stddev, 0.0);
    EXPECT_EQ(one.stderrOfMean, 0.0);
}
