/**
 * @file
 * Tests for the online samplers and the observer-effect model.
 */

#include <gtest/gtest.h>

#include <deque>

#include "core/sampling/sampler.hh"
#include "core/sampling/transition.hh"
#include "os/kernel.hh"

using namespace rbv;
using namespace rbv::core;
using namespace rbv::os;

namespace {

/** Thread logic alternating exec bursts and configurable syscalls. */
struct BurstLogic : ThreadLogic
{
    double burst_ins;
    double cpi;
    Sys sys;
    bool use_syscall;

    BurstLogic(double burst_ins, double cpi = 1.0,
               Sys sys = Sys::gettimeofday, bool use_syscall = true)
        : burst_ins(burst_ins), cpi(cpi), sys(sys),
          use_syscall(use_syscall)
    {
    }

    bool exec_next = true;

    Action
    next() override
    {
        if (!use_syscall || exec_next) {
            exec_next = false;
            sim::WorkParams p;
            p.baseCpi = cpi;
            return ActExec{p, burst_ins};
        }
        exec_next = true;
        ActSyscall a;
        a.id = sys;
        return a;
    }
};

/**
 * Logic where the same syscall name means different things by
 * context: read-after-poll precedes a high-CPI burst while
 * read-after-write precedes nothing -- only a bigram signal can
 * separate them.
 */
struct ContextualReadLogic : ThreadLogic
{
    int state = 0;

    Action
    next() override
    {
        sim::WorkParams lo;
        lo.baseCpi = 1.0;
        sim::WorkParams hi;
        hi.baseCpi = 5.0;
        ActSyscall a;
        switch (state++ % 10) {
          case 0:
            return ActExec{lo, 200000.0};
          case 1:
            a.id = Sys::poll;
            return a;
          case 2: // connection bookkeeping before the request read
            return ActExec{lo, 30000.0};
          case 3: // read-after-poll: the high-CPI parse burst follows
            a.id = Sys::read;
            return a;
          case 4:
            return ActExec{hi, 200000.0};
          case 5:
            a.id = Sys::write;
            return a;
          case 6:
            return ActExec{lo, 30000.0};
          case 7: // read-after-write: just the next body chunk
            a.id = Sys::read;
            return a;
          case 8:
            return ActExec{lo, 200000.0};
          default:
            a.id = Sys::close;
            return a;
        }
    }
};

/** Logic alternating two CPI levels separated by distinct syscalls. */
struct TwoPhaseLogic : ThreadLogic
{
    int state = 0;

    Action
    next() override
    {
        sim::WorkParams p;
        switch (state++ % 4) {
          case 0: { // low-CPI phase
            p.baseCpi = 1.0;
            return ActExec{p, 300000.0};
          }
          case 1: { // writev signals a CPI increase
            ActSyscall a;
            a.id = Sys::writev;
            return a;
          }
          case 2: { // high-CPI phase
            p.baseCpi = 5.0;
            return ActExec{p, 300000.0};
          }
          default: { // stat signals a CPI decrease
            ActSyscall a;
            a.id = Sys::stat;
            return a;
          }
        }
    }
};

struct Rig
{
    sim::EventQueue eq;
    sim::Machine machine;
    Kernel kernel;
    RequestId req;

    Rig()
        : machine(makeConfig(), eq), kernel(machine),
          req(InvalidRequestId)
    {
        machine.setClient(&kernel);
    }

    static sim::MachineConfig
    makeConfig()
    {
        sim::MachineConfig mc;
        mc.numCores = 1;
        mc.coresPerL2Domain = 1;
        return mc;
    }

    /** Start one thread wrapped in an everlasting request context. */
    void
    startWithRequest(std::unique_ptr<ThreadLogic> logic)
    {
        const ChannelId in = kernel.createChannel();
        req = kernel.registerRequest("t", nullptr);
        // A tiny shim delivers the request context, then delegates.
        struct Shim : ThreadLogic
        {
            ChannelId in;
            std::unique_ptr<ThreadLogic> inner;
            bool adopted = false;
            Action
            next() override
            {
                if (!adopted) {
                    adopted = true;
                    ActSyscall a;
                    a.id = Sys::recv;
                    a.args.behavior = SysBehavior::ChannelRecv;
                    a.args.channel = in;
                    return a;
                }
                return inner->next();
            }
        };
        auto shim = std::make_unique<Shim>();
        shim->in = in;
        shim->inner = std::move(logic);
        kernel.createThread(kernel.createProcess("p"), std::move(shim));
        kernel.start();
        Message m;
        m.request = req;
        kernel.post(in, m);
    }
};

} // namespace

// ------------------------------------------------------- Observer model

TEST(Observer, SpinFloorAtZeroPollution)
{
    const auto c = observerCost(SampleContext::InKernel, 0.0);
    EXPECT_DOUBLE_EQ(c.cycles, InKernelSpin.cycles);
    EXPECT_DOUBLE_EQ(c.l2Refs, 0.0);
}

TEST(Observer, DataCeilingAtFullPollution)
{
    const auto c = observerCost(SampleContext::InKernel,
                                FullPollutionMissesPerIns);
    EXPECT_DOUBLE_EQ(c.cycles, InKernelData.cycles);
    EXPECT_DOUBLE_EQ(c.l2Refs, InKernelData.l2Refs);
}

TEST(Observer, InterpolationMonotone)
{
    double prev = 0.0;
    for (double m = 0.0; m <= 0.03; m += 0.005) {
        const auto c = observerCost(SampleContext::Interrupt, m);
        EXPECT_GE(c.cycles, prev);
        prev = c.cycles;
    }
}

TEST(Observer, InterruptCostsMoreThanInKernel)
{
    const auto ik = observerCost(SampleContext::InKernel, 0.01);
    const auto ir = observerCost(SampleContext::Interrupt, 0.01);
    EXPECT_GT(ir.cycles, ik.cycles);
}

TEST(Observer, CompensationIsSpinRow)
{
    EXPECT_DOUBLE_EQ(observerCompensation(SampleContext::InKernel).cycles,
                     InKernelSpin.cycles);
    EXPECT_DOUBLE_EQ(
        observerCompensation(SampleContext::Interrupt).cycles,
        InterruptSpin.cycles);
}

// ---------------------------------------------------- InterruptSampler

TEST(InterruptSampler, SamplesAtConfiguredPeriod)
{
    Rig rig;
    SamplerConfig sc;
    sc.periodUs = 10.0;
    InterruptSampler sampler(rig.kernel, sc);
    rig.startWithRequest(
        std::make_unique<BurstLogic>(1e6, 1.0, Sys::gettimeofday,
                                     false));
    sampler.start();
    rig.eq.runUntil(sim::msToCycles(2.0));

    // ~2 ms of busy execution at 10 us period -> ~200 samples.
    EXPECT_NEAR(static_cast<double>(sampler.stats().interruptSamples),
                200.0, 30.0);
}

TEST(InterruptSampler, TimelinePeriodsMatchRequestExecution)
{
    Rig rig;
    SamplerConfig sc;
    sc.periodUs = 10.0;
    InterruptSampler sampler(rig.kernel, sc);
    rig.startWithRequest(
        std::make_unique<BurstLogic>(1e6, 2.0, Sys::gettimeofday,
                                     false));
    sampler.start();
    rig.eq.runUntil(sim::msToCycles(2.0));

    const Timeline &tl = sampler.timelineOf(rig.req);
    ASSERT_GT(tl.periods.size(), 50u);
    // Each interrupt period covers ~10 us of CPI-2 execution:
    // ~15000 instructions.
    double sum = 0.0;
    for (const auto &p : tl.periods)
        sum += p.instructions;
    EXPECT_NEAR(sum / static_cast<double>(tl.periods.size()), 15000.0,
                2500.0);
    // CPI of interior periods reflects the workload.
    const auto &mid = tl.periods[tl.periods.size() / 2];
    EXPECT_NEAR(mid.cpi(), 2.0, 0.25);
}

TEST(InterruptSampler, ObserverCostInflatesUncompensatedCpi)
{
    auto run = [&](bool compensate) {
        Rig rig;
        SamplerConfig sc;
        sc.periodUs = 10.0;
        sc.compensate = compensate;
        InterruptSampler sampler(rig.kernel, sc);
        rig.startWithRequest(std::make_unique<BurstLogic>(
            1e6, 1.0, Sys::gettimeofday, false));
        sampler.start();
        rig.eq.runUntil(sim::msToCycles(2.0));
        const Timeline &tl = sampler.timelineOf(rig.req);
        double cyc = 0.0, ins = 0.0;
        for (const auto &p : tl.periods) {
            cyc += p.cycles;
            ins += p.instructions;
        }
        return cyc / ins;
    };
    const double raw = run(false);
    const double comp = run(true);
    // Compensation must bring the measured CPI closer to the true 1.0
    // (plus context-switch noise) from above.
    EXPECT_GT(raw, comp);
    EXPECT_NEAR(comp, 1.0, 0.1);
}

TEST(InterruptSampler, OverheadAccounted)
{
    Rig rig;
    SamplerConfig sc;
    sc.periodUs = 10.0;
    InterruptSampler sampler(rig.kernel, sc);
    rig.startWithRequest(std::make_unique<BurstLogic>(
        1e6, 1.0, Sys::gettimeofday, false));
    sampler.start();
    rig.eq.runUntil(sim::msToCycles(2.0));
    // Each interrupt sample costs >= the Spin interrupt row.
    EXPECT_GE(sampler.stats().overheadCycles,
              static_cast<double>(sampler.stats().interruptSamples) *
                  InterruptSpin.cycles);
}

// ------------------------------------------------------ SyscallSampler

TEST(SyscallSampler, SamplesAtSyscallsHonoringMinGap)
{
    Rig rig;
    SamplerConfig sc;
    sc.minGapUs = 10.0;
    sc.backupUs = 500.0;
    SyscallSampler sampler(rig.kernel, sc);
    // Bursts of ~5 us -> syscalls every ~10 us of execution.
    rig.startWithRequest(std::make_unique<BurstLogic>(15000.0, 1.0));
    sampler.start();
    rig.eq.runUntil(sim::msToCycles(2.0));

    EXPECT_GT(sampler.stats().syscallSamples, 50u);
    // With frequent syscalls, the backup timer must (almost) never
    // fire (the paper's design goal).
    EXPECT_LE(sampler.stats().backupSamples,
              sampler.stats().syscallSamples / 10);
}

TEST(SyscallSampler, MinGapRateLimits)
{
    Rig rig;
    SamplerConfig sc;
    sc.minGapUs = 100.0;
    sc.backupUs = 10000.0;
    SyscallSampler sampler(rig.kernel, sc);
    // Syscalls every ~2 us: the 100 us gate must swallow ~98% of them.
    rig.startWithRequest(std::make_unique<BurstLogic>(6000.0, 1.0));
    sampler.start();
    rig.eq.runUntil(sim::msToCycles(4.0));

    const auto &st = sampler.stats();
    EXPECT_GT(rig.kernel.stats().syscalls, 10u * st.syscallSamples);
}

TEST(SyscallSampler, BackupCoversSyscallFreeExecution)
{
    Rig rig;
    SamplerConfig sc;
    sc.minGapUs = 10.0;
    sc.backupUs = 50.0;
    SyscallSampler sampler(rig.kernel, sc);
    // One giant burst, no syscalls: only backup interrupts sample.
    rig.startWithRequest(std::make_unique<BurstLogic>(
        1e9, 1.0, Sys::gettimeofday, false));
    sampler.start();
    rig.eq.runUntil(sim::msToCycles(2.0));

    EXPECT_NEAR(static_cast<double>(sampler.stats().backupSamples),
                2000.0 / 50.0, 10.0);
    EXPECT_EQ(sampler.stats().syscallSamples, 0u);
}

// ---------------------------------------------- TransitionSignalSampler

TEST(TransitionSampler, OnlySelectedSyscallsTrigger)
{
    Rig rig;
    SamplerConfig sc;
    sc.minGapUs = 1.0;
    sc.backupUs = 100000.0;
    TransitionSignalSampler sampler(rig.kernel, sc,
                                    {Sys::writev, Sys::stat});
    rig.startWithRequest(std::make_unique<TwoPhaseLogic>());
    sampler.start();
    rig.eq.runUntil(sim::msToCycles(10.0));
    const auto selected = sampler.stats().syscallSamples;
    EXPECT_GT(selected, 10u);

    Rig rig2;
    TransitionSignalSampler none(rig2.kernel, sc, {Sys::open});
    rig2.startWithRequest(std::make_unique<TwoPhaseLogic>());
    none.start();
    rig2.eq.runUntil(sim::msToCycles(10.0));
    EXPECT_EQ(none.stats().syscallSamples, 0u);
}

// ---------------------------------------------------- TransitionTrainer

TEST(TransitionTrainer, LearnsSignedCpiChanges)
{
    Rig rig;
    SamplerConfig sc;
    sc.periodUs = 10.0;
    InterruptSampler sampler(rig.kernel, sc);
    TransitionTrainer trainer(rig.kernel, sampler);
    rig.startWithRequest(std::make_unique<TwoPhaseLogic>());
    sampler.start();
    rig.eq.runUntil(sim::msToCycles(20.0));

    const auto ranked = trainer.ranked(5);
    ASSERT_GE(ranked.size(), 2u);

    double writev_change = 0.0, stat_change = 0.0;
    bool saw_writev = false, saw_stat = false;
    for (const auto &s : ranked) {
        if (s.sys == Sys::writev) {
            writev_change = s.meanChange;
            saw_writev = true;
        }
        if (s.sys == Sys::stat) {
            stat_change = s.meanChange;
            saw_stat = true;
        }
    }
    ASSERT_TRUE(saw_writev);
    ASSERT_TRUE(saw_stat);
    // writev precedes the CPI jump 1 -> 4; stat precedes 4 -> 1.
    EXPECT_GT(writev_change, 1.0);
    EXPECT_LT(stat_change, -1.0);
}

TEST(TransitionTrainer, SelectTriggersRanksByMagnitude)
{
    Rig rig;
    SamplerConfig sc;
    sc.periodUs = 10.0;
    InterruptSampler sampler(rig.kernel, sc);
    TransitionTrainer trainer(rig.kernel, sampler);
    rig.startWithRequest(std::make_unique<TwoPhaseLogic>());
    sampler.start();
    rig.eq.runUntil(sim::msToCycles(20.0));

    const auto triggers = trainer.selectTriggers(2, 5);
    ASSERT_EQ(triggers.size(), 2u);
    // The two phase-change signals must rank above recv/send noise.
    for (Sys s : triggers)
        EXPECT_TRUE(s == Sys::writev || s == Sys::stat);
}

// ------------------------------------------------- Bigram extension

TEST(BigramTrainer, SeparatesContextDependentSyscalls)
{
    Rig rig;
    SamplerConfig sc;
    sc.minGapUs = 1.0;
    sc.backupUs = 100000.0;
    SyscallSampler sampler(rig.kernel, sc);
    TransitionTrainer uni(rig.kernel, sampler);
    BigramTransitionTrainer bi(rig.kernel, sampler);
    rig.startWithRequest(std::make_unique<ContextualReadLogic>());
    sampler.start();
    rig.eq.runUntil(sim::msToCycles(30.0));

    // Unigram: read's mean change blends +4 and 0 contexts.
    double uni_read = 0.0, uni_read_std = 0.0;
    for (const auto &st : uni.ranked(5)) {
        if (st.sys == Sys::read) {
            uni_read = st.meanChange;
            uni_read_std = st.stddev;
        }
    }
    EXPECT_GT(uni_read, 0.8);
    EXPECT_LT(uni_read, 3.2);
    EXPECT_GT(uni_read_std, 1.0); // blended contexts -> high spread

    // Bigram: (poll, read) is a strong clean signal; (write, read)
    // is near zero.
    double poll_read = 0.0, write_read = 1e9;
    double poll_read_std = 1e9;
    for (const auto &st : bi.ranked(5)) {
        if (st.bigram == std::make_pair(Sys::poll, Sys::read)) {
            poll_read = st.meanChange;
            poll_read_std = st.stddev;
        }
        if (st.bigram == std::make_pair(Sys::write, Sys::read))
            write_read = st.meanChange;
    }
    EXPECT_GT(poll_read, 3.0);
    EXPECT_LT(poll_read_std, uni_read_std);
    EXPECT_LT(std::abs(write_read), 0.5);

    // And (poll, read) ranks among the strongest bigram signals
    // ((read, write), its mirror-image drop, is equally strong).
    const auto triggers = bi.selectTriggers(2, 5);
    ASSERT_EQ(triggers.size(), 2u);
    const bool found =
        triggers[0] == std::make_pair(Sys::poll, Sys::read) ||
        triggers[1] == std::make_pair(Sys::poll, Sys::read);
    EXPECT_TRUE(found);
}

TEST(BigramSampler, TriggersOnlyOnSelectedPairs)
{
    Rig rig;
    SamplerConfig sc;
    sc.minGapUs = 1.0;
    sc.backupUs = 100000.0;
    BigramTransitionSignalSampler sampler(
        rig.kernel, sc, {{Sys::poll, Sys::read}});
    rig.startWithRequest(std::make_unique<ContextualReadLogic>());
    sampler.start();
    rig.eq.runUntil(sim::msToCycles(20.0));

    // One (poll, read) occurrence per 10-step cycle. Expect roughly
    // one syscall sample per cycle and no more.
    const auto n = sampler.stats().syscallSamples;
    EXPECT_GT(n, 10u);
    // 5 syscalls per cycle: an all-syscall sampler takes several x.
    Rig rig2;
    SyscallSampler all(rig2.kernel, sc);
    rig2.startWithRequest(std::make_unique<ContextualReadLogic>());
    all.start();
    rig2.eq.runUntil(sim::msToCycles(20.0));
    EXPECT_GT(all.stats().syscallSamples, n * 3);
}
