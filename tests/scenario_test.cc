/**
 * @file
 * Integration tests: full scenarios through machine + kernel +
 * workload + sampler, checking cross-module invariants.
 */

#include <gtest/gtest.h>

#include "exp/analysis.hh"
#include "exp/scenario.hh"
#include "stats/summary.hh"

using namespace rbv;
using namespace rbv::exp;

namespace {

ScenarioConfig
smallConfig(wl::App app, std::size_t requests = 40)
{
    ScenarioConfig cfg;
    cfg.app = app;
    cfg.requests = requests;
    cfg.warmup = 5;
    cfg.seed = 11;
    return cfg;
}

} // namespace

class ScenarioAllApps : public ::testing::TestWithParam<wl::App>
{
};

TEST_P(ScenarioAllApps, CompletesAndRecords)
{
    const auto res = runScenario(smallConfig(GetParam()));
    EXPECT_EQ(res.records.size(), 35u); // 40 - 5 warmup
    for (const auto &rec : res.records) {
        EXPECT_GT(rec.totals.instructions, 0.0);
        EXPECT_GT(rec.totals.cycles, rec.totals.instructions * 0.2);
        EXPECT_GE(rec.completed, rec.injected);
        EXPECT_FALSE(rec.className.empty());
        EXPECT_FALSE(rec.syscalls.empty());
        // Sampled timeline exists and roughly covers the request.
        EXPECT_FALSE(rec.timeline.periods.empty());
        EXPECT_NEAR(rec.timeline.totalInstructions(),
                    rec.totals.instructions,
                    rec.totals.instructions * 0.35);
    }
}

TEST_P(ScenarioAllApps, DeterministicAcrossRuns)
{
    const auto a = runScenario(smallConfig(GetParam(), 25));
    const auto b = runScenario(smallConfig(GetParam(), 25));
    ASSERT_EQ(a.records.size(), b.records.size());
    EXPECT_EQ(a.wallCycles, b.wallCycles);
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].className, b.records[i].className);
        EXPECT_DOUBLE_EQ(a.records[i].totals.instructions,
                         b.records[i].totals.instructions);
        EXPECT_DOUBLE_EQ(a.records[i].totals.cycles,
                         b.records[i].totals.cycles);
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, ScenarioAllApps,
                         ::testing::ValuesIn(wl::allApps()),
                         [](const auto &info) {
                             return wl::makeGenerator(info.param)
                                 ->appName();
                         });

TEST(Scenario, SingleCoreRunsSerially)
{
    // TPCH is the application the paper shows most obfuscated by
    // multicore sharing: its peak request CPI roughly doubles from
    // serial to 4-core concurrent execution (Fig. 1).
    auto cfg = smallConfig(wl::App::Tpch, 25);
    cfg.numCores = 1;
    const auto res = runScenario(cfg);
    EXPECT_EQ(res.records.size(), 20u);
    const auto serial = requestCpis(res.records);
    const auto cfg4 = smallConfig(wl::App::Tpch, 25);
    const auto res4 = runScenario(cfg4);
    const auto conc = requestCpis(res4.records);
    EXPECT_LT(stats::quantile(serial, 0.9),
              stats::quantile(conc, 0.9));
}

TEST(Scenario, SyscallSamplerCheaperThanInterruptAtMatchedRate)
{
    // The headline claim of Sec. 3.2 (Fig. 5): with comparable sample
    // counts, syscall-triggered sampling costs less.
    auto base = smallConfig(wl::App::WebServer, 60);
    base.sampler = SamplerKind::Interrupt;
    const auto ir = runScenario(base);

    auto sys = base;
    sys.sampler = SamplerKind::Syscall;
    const auto sr = runScenario(sys);

    ASSERT_GT(ir.samplerStats.totalSamples(), 0u);
    ASSERT_GT(sr.samplerStats.totalSamples(), 0u);
    // In-kernel samples dominate for the syscall sampler.
    EXPECT_GT(sr.samplerStats.inKernelSamples(),
              sr.samplerStats.interruptContextSamples());
    // Per-sample overhead is lower for the syscall sampler.
    const double ir_per =
        ir.samplerStats.overheadCycles / ir.samplerStats.totalSamples();
    const double sr_per =
        sr.samplerStats.overheadCycles / sr.samplerStats.totalSamples();
    EXPECT_LT(sr_per, ir_per);
}

TEST(Scenario, SyscallGapsRecordedWhenRequested)
{
    auto cfg = smallConfig(wl::App::WebServer, 40);
    cfg.recordSyscallGaps = true;
    const auto res = runScenario(cfg);
    EXPECT_GT(res.syscallGaps.size(), 200u);
    for (std::size_t i = 0; i < 50; ++i) {
        EXPECT_GE(res.syscallGaps[i].cycles, 0.0);
        EXPECT_GE(res.syscallGaps[i].instructions, 0.0);
    }
    // CDF at huge distance is ~1.
    const auto cdf =
        syscallGapCdf(res.syscallGaps, {1.0e12}, true);
    EXPECT_NEAR(cdf[0], 1.0, 1e-9);
}

TEST(Scenario, MonitorAttachesAtThreshold)
{
    auto cfg = smallConfig(wl::App::Tpch, 25);
    cfg.monitorThreshold = 0.001;
    const auto res = runScenario(cfg);
    EXPECT_GT(res.contention.totalCycles(), 0.0);
}

TEST(Scenario, NoSamplerMeansNoTimelines)
{
    auto cfg = smallConfig(wl::App::Tpcc, 25);
    cfg.sampler = SamplerKind::None;
    const auto res = runScenario(cfg);
    EXPECT_EQ(res.samplerStats.totalSamples(), 0u);
    for (const auto &rec : res.records)
        EXPECT_TRUE(rec.timeline.periods.empty());
    // Exact kernel accounting still works.
    EXPECT_GT(res.records.front().totals.instructions, 0.0);
}

TEST(Scenario, WarmupDropsLeadingRequests)
{
    auto cfg = smallConfig(wl::App::Tpcc, 30);
    cfg.warmup = 10;
    const auto res = runScenario(cfg);
    EXPECT_EQ(res.records.size(), 20u);
}

TEST(Analysis, CovPairIntraAtLeastComparableToInter)
{
    const auto res = runScenario(smallConfig(wl::App::Tpcc, 60));
    const auto cov = covInterIntra(res.records, core::Metric::Cpi);
    EXPECT_GT(cov.inter, 0.0);
    // Sec. 2.3 / Fig. 3: considering intra-request fluctuations
    // yields stronger (or at least comparable) variations.
    EXPECT_GT(cov.withIntra, cov.inter * 0.8);
}

TEST(Analysis, SeriesExtractionShapes)
{
    const auto res = runScenario(smallConfig(wl::App::Tpcc, 40));
    const double bin = defaultBinIns(res.records);
    const auto series =
        seriesFor(res.records, core::Metric::Cpi, bin);
    ASSERT_EQ(series.size(), res.records.size());
    std::size_t nonempty = 0;
    for (const auto &s : series)
        nonempty += !s.empty();
    EXPECT_GT(nonempty, series.size() * 3 / 4);
}

TEST(Analysis, MissesQuantileMonotone)
{
    const auto res = runScenario(smallConfig(wl::App::Tpch, 25));
    const double q50 = missesPerInsQuantile(res.records, 0.5);
    const double q80 = missesPerInsQuantile(res.records, 0.8);
    const double q95 = missesPerInsQuantile(res.records, 0.95);
    EXPECT_LE(q50, q80);
    EXPECT_LE(q80, q95);
    EXPECT_GT(q80, 0.0);
}

TEST(Analysis, OverallMetricMatchesTotals)
{
    const auto res = runScenario(smallConfig(wl::App::Tpcc, 30));
    sim::CounterSnapshot total;
    for (const auto &r : res.records)
        total += r.totals;
    EXPECT_NEAR(overallMetric(res.records, core::Metric::Cpi),
                total.cycles / total.instructions, 1e-9);
}
