/**
 * @file
 * Serving-mode tests: streaming-vs-batch model equivalence, the
 * windowed/decaying statistics, kernel request-slot recycling, and
 * the end-to-end serve loop (determinism, shedding, degraded exit).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/model/anomaly.hh"
#include "core/model/distance.hh"
#include "core/model/kmedoids.hh"
#include "core/model/streaming.hh"
#include "exp/serve.hh"
#include "fi/plan.hh"
#include "stats/online.hh"
#include "stats/rng.hh"

using namespace rbv;

namespace {

/** Deterministic synthetic series set (random-walk shapes). */
std::vector<core::MetricSeries>
makeSeries(std::size_t n, std::uint64_t seed)
{
    stats::Rng rng(seed);
    std::vector<core::MetricSeries> out;
    for (std::size_t i = 0; i < n; ++i) {
        core::MetricSeries s;
        double v = rng.uniform(0.5, 2.0);
        const std::size_t len = 8 + rng.uniformInt(9);
        for (std::size_t t = 0; t < len; ++t) {
            v += rng.uniform(-0.2, 0.2);
            s.push_back(v);
        }
        out.push_back(std::move(s));
    }
    return out;
}

// ---------------------------------------------------------- stats

TEST(Ewma, BiasCorrectedValueTracksConstantInput)
{
    stats::Ewma e(0.1);
    for (int i = 0; i < 5; ++i)
        e.add(3.5);
    EXPECT_DOUBLE_EQ(e.value(), 3.5);
}

TEST(EwmaMeanVar, CovIsZeroForConstantAndPositiveForSpread)
{
    stats::EwmaMeanVar flat(0.05);
    for (int i = 0; i < 100; ++i)
        flat.add(2.0);
    EXPECT_DOUBLE_EQ(flat.mean(), 2.0);
    EXPECT_NEAR(flat.cov(), 0.0, 1e-9);

    stats::EwmaMeanVar spread(0.05);
    for (int i = 0; i < 100; ++i)
        spread.add(i % 2 == 0 ? 1.0 : 3.0);
    EXPECT_GT(spread.cov(), 0.1);
}

TEST(SlidingQuantile, ExactOverTheWindowAndEvictsOldest)
{
    stats::SlidingQuantile q(4);
    for (double v : {1.0, 2.0, 3.0, 4.0})
        q.add(v);
    EXPECT_DOUBLE_EQ(q.median(), 2.0); // lower nearest-rank
    EXPECT_DOUBLE_EQ(q.quantile(1.0), 4.0);

    q.add(100.0); // evicts 1.0 -> window {2,3,4,100}
    EXPECT_DOUBLE_EQ(q.quantile(0.0), 2.0);
    EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(q.count(), 5u);
}

// ------------------------------------------- streaming signatures

TEST(StreamingSignatureBank, FillsToCapacityThenStaysBounded)
{
    const auto series = makeSeries(64, 11);
    core::StreamingSignatureBank bank(1.0, 16, stats::Rng(5));
    std::size_t admitted = 0;
    for (std::size_t i = 0; i < series.size(); ++i)
        admitted += bank.offer(series[i], 1000.0 + i,
                               static_cast<int>(i % 3));
    EXPECT_EQ(bank.bank().size(), 16u);
    EXPECT_EQ(bank.offered(), 64u);
    EXPECT_GE(admitted, 16u); // the fill plus some replacements
    EXPECT_LT(admitted, 64u); // but far from everything
}

TEST(StreamingSignatureBank, ReservoirIsDeterministicAtFixedSeed)
{
    const auto series = makeSeries(40, 3);
    auto run = [&] {
        core::StreamingSignatureBank bank(1.0, 8, stats::Rng(9));
        for (std::size_t i = 0; i < series.size(); ++i)
            bank.offer(series[i], 1.0, static_cast<int>(i));
        std::vector<int> classes;
        for (std::size_t i = 0; i < bank.bank().size(); ++i)
            classes.push_back(bank.bank().entry(i).classId);
        return classes;
    };
    EXPECT_EQ(run(), run());
}

// ---------------------------------------- streaming-vs-batch equiv

TEST(StreamingClusterModel, FullWindowReclusterMatchesBatchKMedoids)
{
    const auto series = makeSeries(24, 21);
    const double penalty = 0.1;
    const std::size_t k = 3;

    core::StreamingClusterModel::Config cc;
    cc.window = series.size();
    cc.sample = 0; // whole window, in arrival order: no rng draws
    cc.k = k;
    cc.asyncPenalty = penalty;
    cc.reclusterEvery = 0; // manual
    core::StreamingClusterModel model(cc, stats::Rng(77));
    for (const auto &s : series)
        model.observe(s);
    model.recluster();

    const auto dm = core::DistanceMatrix::build(
        series.size(), [&](std::size_t i, std::size_t j) {
            return core::dtwDistance(series[i], series[j], penalty);
        });
    stats::Rng batchRng(77);
    const auto batch = core::kMedoids(dm, k, batchRng);

    EXPECT_EQ(model.clustering().medoids, batch.medoids);
    EXPECT_EQ(model.clustering().assignment, batch.assignment);
    ASSERT_EQ(model.medoids().size(), batch.medoids.size());
    for (std::size_t c = 0; c < batch.medoids.size(); ++c)
        EXPECT_EQ(model.medoids()[c], series[batch.medoids[c]]);
}

TEST(WindowedAnomalyDetector, FullWindowMatchesBatchDetection)
{
    const auto series = makeSeries(20, 31);
    const double penalty = 0.05;

    core::WindowedAnomalyDetector::Config wc;
    wc.window = series.size();
    wc.asyncPenalty = penalty;
    core::WindowedAnomalyDetector det(wc);
    for (const auto &s : series)
        det.observe(s);
    const auto streaming = det.evaluate();
    const auto batch = core::detectCentroidAnomaly(series, penalty);

    EXPECT_EQ(streaming.centroid, batch.centroid);
    EXPECT_EQ(streaming.anomaly, batch.anomaly);
    EXPECT_DOUBLE_EQ(streaming.distance, batch.distance);
    EXPECT_EQ(streaming.ranking, batch.ranking);
}

TEST(WindowedAnomalyDetector, SlidingWindowKeepsOnlyRecentSeries)
{
    const auto series = makeSeries(12, 41);
    core::WindowedAnomalyDetector::Config wc;
    wc.window = 4;
    core::WindowedAnomalyDetector det(wc);
    for (const auto &s : series)
        det.observe(s);
    EXPECT_EQ(det.windowSize(), 4u);
    EXPECT_EQ(det.observedCount(), 12u);

    // The window is the last 4 series in arrival order.
    std::vector<core::MetricSeries> tail(series.end() - 4,
                                         series.end());
    const auto streaming = det.evaluate();
    const auto batch = core::detectCentroidAnomaly(tail, 0.0);
    EXPECT_EQ(streaming.ranking, batch.ranking);
}

TEST(RollingAnomalyScorer, WarmsUpThenFlagsOutliers)
{
    core::RollingAnomalyScorer::Config rc;
    rc.window = 32;
    rc.quantile = 0.9;
    rc.margin = 1.5;
    core::RollingAnomalyScorer scorer(rc);

    EXPECT_DOUBLE_EQ(scorer.threshold(), 0.0);
    bool flagged_during_warmup = false;
    for (int i = 0; i < 32; ++i)
        flagged_during_warmup |= scorer.observe(1.0);
    EXPECT_FALSE(flagged_during_warmup);
    EXPECT_GT(scorer.threshold(), 0.0);

    EXPECT_TRUE(scorer.observe(100.0));
    EXPECT_FALSE(scorer.observe(1.0));
    EXPECT_EQ(scorer.flaggedCount(), 1u);
}

// --------------------------------------------------- serve loop

exp::ServeConfig
smallServe(std::size_t requests)
{
    exp::ServeConfig cfg;
    cfg.appName = "micromix";
    cfg.base.seed = 42;
    cfg.arrival.qps = 20000.0;
    cfg.targetRequests = requests;
    cfg.checkpointEvery = requests / 2;
    cfg.window = 64;
    cfg.sample = 16;
    cfg.reclusterEvery = 32;
    cfg.bankCapacity = 32;
    cfg.quiet = false;
    return cfg;
}

TEST(ServeLoop, RecyclesRequestSlotsAndStaysBounded)
{
    std::ostringstream out;
    const auto res = exp::runServe(smallServe(2000), out);
    EXPECT_EQ(res.completed, 2000u);
    EXPECT_EQ(res.shed, 0u);
    // The kernel slot table must be bounded by peak concurrency,
    // not the stream length: 2000 requests, a few dozen slots.
    EXPECT_LT(res.requestSlots, 64u);
    EXPECT_FALSE(res.degraded());
    EXPECT_EQ(res.checkpoints.size(), 2u);
    for (const auto &cp : res.checkpoints)
        EXPECT_LT(cp.requestSlots, 64u);
}

TEST(ServeLoop, FixedSeedRunsAreByteIdentical)
{
    std::ostringstream a, b;
    exp::runServe(smallServe(1500), a);
    exp::runServe(smallServe(1500), b);
    EXPECT_FALSE(a.str().empty());
    EXPECT_EQ(a.str(), b.str());
}

TEST(ServeLoop, OverloadShedsInsteadOfQueueingWithoutBound)
{
    exp::ServeConfig cfg = smallServe(3000);
    cfg.arrival.qps = 2.0e6; // far beyond service capacity
    cfg.maxOutstanding = 32;
    std::ostringstream out;
    const auto res = exp::runServe(cfg, out);
    EXPECT_EQ(res.arrivals, 3000u);
    EXPECT_GT(res.shed, 0u);
    EXPECT_EQ(res.injected + res.shed, res.arrivals);
    EXPECT_LT(res.requestSlots, 64u);
}

TEST(ServeLoop, ReqStuckFaultMarksTheRunDegraded)
{
    exp::ServeConfig cfg = smallServe(2000);
    fi::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(fi::FaultPlan::parse("req-stuck(p=0.05,mult=12)",
                                     plan, error))
        << error;
    cfg.base.faults = std::make_shared<const fi::FaultPlan>(plan);
    std::ostringstream out;
    const auto res = exp::runServe(cfg, out);
    EXPECT_TRUE(res.degraded());
    EXPECT_GT(res.stalled, 0u);
    // Roughly p of the stream, not everything and not one slot's
    // worth: the fault hash must key the registration sequence.
    EXPECT_GT(res.stalled, 20u);
    EXPECT_LT(res.stalled, 400u);
    EXPECT_FALSE(res.injections.empty());
}

TEST(ServeLoop, DurationModeRunsWithoutARequestTarget)
{
    exp::ServeConfig cfg = smallServe(0);
    cfg.targetRequests = 0;
    cfg.durationSec = 0.02;
    cfg.checkpointEvery = 100;
    std::ostringstream out;
    const auto res = exp::runServe(cfg, out);
    EXPECT_GT(res.completed, 100u);
    EXPECT_LT(res.requestSlots, 64u);
}

TEST(ServeGenerator, ResolvesCatalogueAppsAndMicromix)
{
    EXPECT_EQ(exp::makeServeGenerator("micromix")->appName(),
              "micromix");
    EXPECT_EQ(exp::makeServeGenerator("tpcc")->appName(), "tpcc");
    EXPECT_THROW(exp::makeServeGenerator("nonesuch"),
                 std::invalid_argument);
}

} // namespace
