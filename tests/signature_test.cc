/**
 * @file
 * Tests for online signature identification (Sec. 4.4).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/model/signature.hh"
#include "stats/rng.hh"

using namespace rbv;
using namespace rbv::core;

namespace {

/** Class-c signature shape of length n. */
MetricSeries
shapeOf(int c, std::size_t n, stats::Rng *noise = nullptr)
{
    MetricSeries s;
    for (std::size_t k = 0; k < n; ++k) {
        double v = 0.02 + 0.01 * std::sin(0.2 * k + c) +
                   0.004 * c;
        if (noise)
            v += noise->uniform(-0.001, 0.001);
        s.push_back(v);
    }
    return s;
}

} // namespace

TEST(SignatureBank, IdentifiesExactMatch)
{
    SignatureBank bank(1000.0);
    for (int c = 0; c < 5; ++c)
        bank.add(shapeOf(c, 50), 1000.0 * (c + 1), c);
    for (int c = 0; c < 5; ++c) {
        const auto idx = bank.identify(shapeOf(c, 50));
        ASSERT_NE(idx, SignatureBank::npos);
        EXPECT_EQ(bank.entry(idx).classId, c);
    }
}

TEST(SignatureBank, IdentifiesFromPrefix)
{
    SignatureBank bank(1000.0);
    stats::Rng noise(41);
    for (int c = 0; c < 5; ++c)
        bank.add(shapeOf(c, 60), 100.0 * c, c);
    for (int c = 0; c < 5; ++c) {
        MetricSeries prefix = shapeOf(c, 12, &noise);
        const auto idx = bank.identify(prefix);
        ASSERT_NE(idx, SignatureBank::npos);
        EXPECT_EQ(bank.entry(idx).classId, c);
    }
}

TEST(SignatureBank, EmptyBankAndEmptyPartial)
{
    SignatureBank bank(1000.0);
    EXPECT_EQ(bank.identify({0.1}), SignatureBank::npos);
    bank.add({0.1, 0.2}, 10.0, 0);
    EXPECT_EQ(bank.identify({}), SignatureBank::npos);
}

TEST(SignatureBank, AverageSignatureBlindToShape)
{
    // Two classes: same average, different shapes. The variation
    // signature separates them; the average signature carries zero
    // information to tell them apart (Sec. 4.4's motivation).
    SignatureBank bank(1000.0);
    MetricSeries rising, falling;
    for (int k = 0; k < 20; ++k) {
        rising.push_back(0.01 + 0.001 * k);
        falling.push_back(0.01 + 0.001 * (19 - k));
    }
    bank.add(rising, 100.0, 0);
    bank.add(falling, 200.0, 1);

    // The variation signature distinguishes a noisy probe of either
    // shape.
    MetricSeries probe_rise = rising, probe_fall = falling;
    for (auto &v : probe_rise)
        v += 0.0001;
    for (auto &v : probe_fall)
        v += 0.0001;
    EXPECT_EQ(bank.entry(bank.identify(probe_rise)).classId, 0);
    EXPECT_EQ(bank.entry(bank.identify(probe_fall)).classId, 1);

    // The stored average signatures are indistinguishable, so the
    // same probes produce the same average-based match: no shape
    // discrimination is possible.
    EXPECT_NEAR(bank.entry(0).avgMetric, bank.entry(1).avgMetric,
                1e-12);
    EXPECT_EQ(bank.identifyByAverage(probe_rise),
              bank.identifyByAverage(probe_fall));
}

TEST(SignatureBank, AverageIdentificationWorksWhenAveragesDiffer)
{
    SignatureBank bank(1000.0);
    bank.add(MetricSeries(20, 0.01), 1.0, 0);
    bank.add(MetricSeries(20, 0.05), 2.0, 1);
    EXPECT_EQ(bank.entry(bank.identifyByAverage(MetricSeries(5, 0.048)))
                  .classId,
              1);
}

TEST(SignatureBank, StoresCpuCyclesForPrediction)
{
    SignatureBank bank(1000.0);
    bank.add(shapeOf(0, 30), 12345.0, 0);
    EXPECT_DOUBLE_EQ(bank.entry(0).cpuCycles, 12345.0);
    EXPECT_EQ(bank.size(), 1u);
}

// ------------------------------------------- confidence-scored matching

TEST(SignatureBank, ConfidenceHighOnCleanMatch)
{
    SignatureBank bank(1000.0);
    for (int c = 0; c < 5; ++c)
        bank.add(shapeOf(c, 50), 1000.0, c);
    const MetricSeries probe = shapeOf(2, 50);
    const auto id = bank.identifyWithConfidence(probe);
    EXPECT_EQ(id.index, bank.identify(probe));
    EXPECT_EQ(bank.entry(id.index).classId, 2);
    EXPECT_GT(id.confidence, 0.5);
}

TEST(SignatureBank, AmbiguousMatchFallsBelowConfidenceFloor)
{
    // Two near-identical signatures: the best and runner-up distances
    // are almost equal, so the margin-based confidence collapses and
    // a positive floor reports "unknown" instead of guessing.
    SignatureBank bank(1000.0);
    bank.add(MetricSeries(30, 0.02), 1.0, 0);
    bank.add(MetricSeries(30, 0.0201), 2.0, 1);
    const MetricSeries probe(30, 0.02005); // equidistant

    const auto permissive = bank.identifyWithConfidence(probe, 0.0);
    EXPECT_NE(permissive.index, SignatureBank::npos);
    EXPECT_LT(permissive.confidence, 0.1);

    const auto strict = bank.identifyWithConfidence(probe, 0.9);
    EXPECT_EQ(strict.index, SignatureBank::npos);
    EXPECT_DOUBLE_EQ(strict.confidence, 0.0);
}

TEST(SignatureBank, SingleEntryExactMatchIsFullyConfident)
{
    SignatureBank bank(1000.0);
    bank.add(shapeOf(1, 40), 5.0, 1);
    const auto id = bank.identifyWithConfidence(shapeOf(1, 40), 0.5);
    EXPECT_EQ(id.index, 0u);
    EXPECT_DOUBLE_EQ(id.confidence, 1.0);
}

TEST(SignatureBank, ConfidenceDegenerateInputs)
{
    SignatureBank bank(1000.0);
    EXPECT_EQ(bank.identifyWithConfidence({0.1}).index,
              SignatureBank::npos);
    bank.add({0.1, 0.2}, 10.0, 0);
    EXPECT_EQ(bank.identifyWithConfidence({}).index,
              SignatureBank::npos);
}

// ------------------------------------------------- RecentPastPredictor

TEST(RecentPast, EmptyPredictsZero)
{
    RecentPastPredictor p;
    EXPECT_TRUE(p.empty());
    EXPECT_DOUBLE_EQ(p.predict(), 0.0);
}

TEST(RecentPast, AveragesWindow)
{
    RecentPastPredictor p(3);
    p.observe(1.0);
    p.observe(2.0);
    EXPECT_DOUBLE_EQ(p.predict(), 1.5);
    p.observe(3.0);
    EXPECT_DOUBLE_EQ(p.predict(), 2.0);
}

TEST(RecentPast, SlidesWindow)
{
    RecentPastPredictor p(2);
    p.observe(10.0);
    p.observe(20.0);
    p.observe(30.0);
    EXPECT_DOUBLE_EQ(p.predict(), 25.0); // last two only
}

TEST(RecentPast, DefaultWindowTen)
{
    RecentPastPredictor p; // window 10, per the paper
    for (int i = 1; i <= 20; ++i)
        p.observe(i);
    EXPECT_DOUBLE_EQ(p.predict(), 15.5); // mean of 11..20
}
