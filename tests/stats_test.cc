/**
 * @file
 * Unit tests for the statistics toolkit.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/online.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

using namespace rbv::stats;

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a() == b();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanConverges)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, NormalMoments)
{
    Rng rng(17);
    double sum = 0.0, sum2 = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(5.0, 2.0);
        sum += x;
        sum2 += x * x;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(19);
    const std::vector<double> w = {1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.discrete(w)];
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / double(n), 0.6, 0.01);
}

TEST(Rng, DiscreteEmptyReturnsZero)
{
    Rng rng(1);
    EXPECT_EQ(rng.discrete({}), 0u);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(42);
    Rng b = a.split();
    // The child stream must not equal the parent continuation.
    int same = 0;
    for (int i = 0; i < 50; ++i)
        same += a() == b();
    EXPECT_LT(same, 2);
}

TEST(Zipf, FirstItemMostPopular)
{
    Rng rng(23);
    ZipfSampler zipf(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[90]);
}

TEST(Zipf, AllSamplesInRange)
{
    Rng rng(29);
    ZipfSampler zipf(10, 0.8);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.sample(rng), 10u);
}

// -------------------------------------------------------- OnlineMeanVar

TEST(OnlineMeanVar, KnownValues)
{
    OnlineMeanVar acc;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_NEAR(acc.stddev(), 2.0, 1e-12);
}

TEST(OnlineMeanVar, EmptyIsZero)
{
    OnlineMeanVar acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.variance(), 0.0);
}

TEST(OnlineMeanVar, SampleVarianceUsesNMinusOne)
{
    OnlineMeanVar acc;
    acc.add(1.0);
    acc.add(3.0);
    EXPECT_DOUBLE_EQ(acc.sampleVariance(), 2.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 1.0);
}

TEST(OnlineMeanVar, MergeMatchesBulk)
{
    OnlineMeanVar a, b, bulk;
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(2.0, 3.0);
        (i % 2 ? a : b).add(x);
        bulk.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), bulk.count());
    EXPECT_NEAR(a.mean(), bulk.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), bulk.variance(), 1e-9);
}

// ---------------------------------------------------------- WeightedCov

TEST(WeightedCov, UniformValuesHaveZeroCov)
{
    WeightedCov cov;
    cov.add(1.0, 3.0);
    cov.add(5.0, 3.0);
    EXPECT_NEAR(cov.cov(), 0.0, 1e-12);
}

TEST(WeightedCov, KnownTwoPoint)
{
    // Weights 1,1; values 1,3: mean 2, var 1, cov 0.5.
    WeightedCov cov;
    cov.add(1.0, 1.0);
    cov.add(1.0, 3.0);
    EXPECT_NEAR(cov.cov(), 0.5, 1e-12);
}

TEST(WeightedCov, WeightingMatters)
{
    // Heavy weight on one value pulls the weighted mean toward it.
    WeightedCov cov;
    cov.add(9.0, 1.0);
    cov.add(1.0, 11.0);
    EXPECT_NEAR(cov.weightedMean(), 2.0, 1e-12);
}

TEST(WeightedCov, ExternalXbar)
{
    WeightedCov cov;
    cov.add(1.0, 2.0);
    cov.add(1.0, 2.0);
    // Around xbar=1: E[(x-1)^2]=1, cov=1.
    EXPECT_NEAR(cov.cov(1.0), 1.0, 1e-12);
}

TEST(WeightedCov, EmptyAndZeroXbarSafe)
{
    WeightedCov cov;
    EXPECT_EQ(cov.cov(), 0.0);
    cov.add(1.0, 1.0);
    EXPECT_EQ(cov.cov(0.0), 0.0);
}

// --------------------------------------------------------- WeightedRmse

TEST(WeightedRmse, PerfectPredictionIsZero)
{
    WeightedRmse rmse;
    rmse.add(2.0, 5.0, 5.0);
    EXPECT_EQ(rmse.rmse(), 0.0);
}

TEST(WeightedRmse, KnownError)
{
    WeightedRmse rmse;
    rmse.add(1.0, 1.0, 2.0);
    rmse.add(3.0, 4.0, 4.0);
    // sum t e^2 = 1, sum t = 4 -> sqrt(1/4) = 0.5.
    EXPECT_NEAR(rmse.rmse(), 0.5, 1e-12);
}

// ------------------------------------------------------------ Quantiles

TEST(Quantile, MedianOfOddSet)
{
    EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenPoints)
{
    EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Quantile, ExtremesAndClamping)
{
    const std::vector<double> v = {5.0, 1.0, 9.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
    EXPECT_DOUBLE_EQ(quantile(v, -1.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 2.0), 9.0);
}

TEST(Quantile, EmptyReturnsZero)
{
    EXPECT_EQ(quantile({}, 0.5), 0.0);
}

TEST(Quantile, BatchMatchesSingle)
{
    const std::vector<double> v = {4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
    const auto qs = quantiles(v, {0.1, 0.5, 0.9});
    EXPECT_DOUBLE_EQ(qs[0], quantile(v, 0.1));
    EXPECT_DOUBLE_EQ(qs[1], quantile(v, 0.5));
    EXPECT_DOUBLE_EQ(qs[2], quantile(v, 0.9));
}

// ------------------------------------------------------------ Histogram

TEST(Histogram, BinningAndProbability)
{
    Histogram h(0.0, 1.0, 4);
    for (double x : {0.5, 1.5, 1.6, 3.9})
        h.add(x);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_DOUBLE_EQ(h.probability(1), 0.5);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(1.0, 1.0, 2);
    h.add(0.5);
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(1.0, 0.5, 3);
    EXPECT_DOUBLE_EQ(h.binLo(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(2), 2.25);
}

TEST(Histogram, AsciiRenders)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5);
    const std::string s = h.ascii(10);
    EXPECT_NE(s.find('#'), std::string::npos);
}

// ---------------------------------------------------------------- Table

TEST(Table, AlignsAndCounts)
{
    Table t({"a", "long_header"});
    t.addRow({"x", "y"});
    t.addRow({"wide_cell"});
    EXPECT_EQ(t.numRows(), 2u);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("long_header"), std::string::npos);
    EXPECT_NE(os.str().find("wide_cell"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, Formatting)
{
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
}
