/**
 * @file
 * Tests for timeline resampling into fixed instruction bins.
 */

#include <gtest/gtest.h>

#include "core/timeline.hh"

using namespace rbv::core;

namespace {

Period
makePeriod(double ins, double cycles, double refs = 0.0,
           double misses = 0.0)
{
    Period p;
    p.instructions = ins;
    p.cycles = cycles;
    p.l2Refs = refs;
    p.l2Misses = misses;
    return p;
}

} // namespace

TEST(Period, MetricAccessors)
{
    const Period p = makePeriod(1000.0, 2000.0, 50.0, 10.0);
    EXPECT_DOUBLE_EQ(p.cpi(), 2.0);
    EXPECT_DOUBLE_EQ(p.l2RefsPerIns(), 0.05);
    EXPECT_DOUBLE_EQ(p.l2MissesPerIns(), 0.01);
    EXPECT_DOUBLE_EQ(p.l2MissRatio(), 0.2);
}

TEST(Period, ZeroDenominatorsSafe)
{
    const Period p;
    EXPECT_EQ(p.cpi(), 0.0);
    EXPECT_EQ(p.l2MissRatio(), 0.0);
}

TEST(Timeline, Totals)
{
    Timeline tl;
    tl.periods.push_back(makePeriod(100.0, 150.0));
    tl.periods.push_back(makePeriod(200.0, 500.0));
    EXPECT_DOUBLE_EQ(tl.totalInstructions(), 300.0);
    EXPECT_DOUBLE_EQ(tl.totalCycles(), 650.0);
}

TEST(Binning, ExactBins)
{
    Timeline tl;
    tl.periods.push_back(makePeriod(100.0, 100.0));
    tl.periods.push_back(makePeriod(100.0, 300.0));
    const auto s = binByInstructions(tl, 100.0, Metric::Cpi);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0], 1.0);
    EXPECT_DOUBLE_EQ(s[1], 3.0);
}

TEST(Binning, PeriodSplitsAcrossBins)
{
    Timeline tl;
    tl.periods.push_back(makePeriod(200.0, 400.0)); // CPI 2 throughout
    const auto s = binByInstructions(tl, 100.0, Metric::Cpi);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0], 2.0);
    EXPECT_DOUBLE_EQ(s[1], 2.0);
}

TEST(Binning, MultiplePeriodsMergeIntoOneBin)
{
    Timeline tl;
    tl.periods.push_back(makePeriod(50.0, 50.0));   // CPI 1
    tl.periods.push_back(makePeriod(50.0, 150.0));  // CPI 3
    const auto s = binByInstructions(tl, 100.0, Metric::Cpi);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_DOUBLE_EQ(s[0], 2.0); // event-weighted blend
}

TEST(Binning, TrailingPartialBinRule)
{
    // 160 instructions at bin width 100: the trailing 60 >= half a
    // bin, so it is kept.
    Timeline tl;
    tl.periods.push_back(makePeriod(160.0, 160.0));
    EXPECT_EQ(binByInstructions(tl, 100.0, Metric::Cpi).size(), 2u);
    // 130 instructions: the trailing 30 < half a bin is dropped.
    Timeline tl2;
    tl2.periods.push_back(makePeriod(130.0, 130.0));
    EXPECT_EQ(binByInstructions(tl2, 100.0, Metric::Cpi).size(), 1u);
}

TEST(Binning, RefsAndMissMetrics)
{
    Timeline tl;
    tl.periods.push_back(makePeriod(100.0, 100.0, 10.0, 5.0));
    const auto refs =
        binByInstructions(tl, 100.0, Metric::L2RefsPerIns);
    const auto ratio =
        binByInstructions(tl, 100.0, Metric::L2MissRatio);
    ASSERT_EQ(refs.size(), 1u);
    EXPECT_DOUBLE_EQ(refs[0], 0.1);
    EXPECT_DOUBLE_EQ(ratio[0], 0.5);
}

TEST(Binning, PrefixLimitsInstructions)
{
    Timeline tl;
    tl.periods.push_back(makePeriod(1000.0, 2000.0));
    const auto s =
        binPrefixByInstructions(tl, 100.0, 250.0, Metric::Cpi);
    // 250 instructions -> 2 full bins + a half-full kept tail.
    EXPECT_EQ(s.size(), 3u);
    const auto s2 =
        binPrefixByInstructions(tl, 100.0, 230.0, Metric::Cpi);
    // A 30-instruction tail is below half a bin and dropped.
    EXPECT_EQ(s2.size(), 2u);
}

TEST(Binning, EmptyAndDegenerateInputs)
{
    Timeline tl;
    EXPECT_TRUE(binByInstructions(tl, 100.0, Metric::Cpi).empty());
    tl.periods.push_back(makePeriod(0.0, 0.0));
    EXPECT_TRUE(binByInstructions(tl, 100.0, Metric::Cpi).empty());
    tl.periods.push_back(makePeriod(100.0, 100.0));
    EXPECT_TRUE(binByInstructions(tl, 0.0, Metric::Cpi).empty());
}

TEST(Binning, InstructionMassConserved)
{
    // The number of full bins equals floor(total/width) and every
    // full bin holds exactly `width` instructions by construction;
    // verify via CPI of a non-uniform timeline staying within the
    // period range.
    Timeline tl;
    tl.periods.push_back(makePeriod(150.0, 150.0));
    tl.periods.push_back(makePeriod(250.0, 1000.0));
    tl.periods.push_back(makePeriod(100.0, 50.0));
    const auto s = binByInstructions(tl, 50.0, Metric::Cpi);
    EXPECT_EQ(s.size(), 10u);
    for (double v : s) {
        EXPECT_GE(v, 0.5);
        EXPECT_LE(v, 4.0);
    }
}

TEST(MetricNames, AllDefined)
{
    EXPECT_STREQ(metricName(Metric::Cpi), "cycles/ins");
    EXPECT_STREQ(metricName(Metric::L2RefsPerIns), "L2 refs/ins");
    EXPECT_STREQ(metricName(Metric::L2MissesPerIns), "L2 misses/ins");
    EXPECT_STREQ(metricName(Metric::L2MissRatio), "L2 miss ratio");
}
