/**
 * @file
 * Tests for the server worker logic, server builder, and closed-loop
 * load driver.
 */

#include <gtest/gtest.h>

#include "os/kernel.hh"
#include "wl/builder.hh"
#include "wl/server.hh"
#include "wl/worker.hh"

using namespace rbv;
using namespace rbv::wl;

namespace {

/** Minimal two-tier generator with fixed, known requests. */
class TwoTierGen : public Generator
{
  public:
    std::string appName() const override { return "twotier"; }

    std::vector<TierSpec>
    tiers() const override
    {
        return {TierSpec{"front", 2}, TierSpec{"back", 2}};
    }

    std::unique_ptr<RequestSpec>
    generate(stats::Rng &rng) override
    {
        (void)rng;
        auto req = std::make_unique<RequestSpec>();
        req->className = "twotier.req";
        req->classId = 0;

        StageSpec front;
        front.tier = 0;
        front.segments.push_back(seg(10000, 1.0, 0.0, 0.0, 0.0));
        req->stages.push_back(std::move(front));

        StageSpec back;
        back.tier = 1;
        back.segments.push_back(withSys(
            seg(20000, 2.0, 0.0, 0.0, 0.0), os::Sys::stat));
        req->stages.push_back(std::move(back));

        StageSpec reply;
        reply.tier = 0;
        reply.segments.push_back(seg(5000, 1.0, 0.0, 0.0, 0.0));
        req->stages.push_back(std::move(reply));
        return req;
    }

    double defaultSamplingPeriodUs() const override { return 100.0; }
    int defaultConcurrency() const override { return 2; }
    double thinkTimeUs() const override { return 100.0; }
};

struct Rig
{
    sim::EventQueue eq;
    sim::Machine machine;
    os::Kernel kernel;

    explicit Rig(int cores = 2)
        : machine(makeConfig(cores), eq), kernel(machine)
    {
        machine.setClient(&kernel);
    }

    static sim::MachineConfig
    makeConfig(int cores)
    {
        sim::MachineConfig mc;
        mc.numCores = cores;
        mc.coresPerL2Domain = cores >= 2 ? 2 : 1;
        return mc;
    }
};

} // namespace

TEST(ServerApp, BuildsTiersAndChannels)
{
    Rig rig;
    TwoTierGen gen;
    ServerApp app(rig.kernel, gen.tiers());
    EXPECT_EQ(app.numTiers(), 2);
    EXPECT_NE(app.tierChannel(0), app.tierChannel(1));
    EXPECT_NE(app.replyChannel(), app.tierChannel(0));
}

TEST(LoadDriver, CompletesTargetRequests)
{
    Rig rig;
    TwoTierGen gen;
    ServerApp app(rig.kernel, gen.tiers());
    LoadDriver::Config dc;
    dc.concurrency = 2;
    dc.targetRequests = 10;
    dc.thinkTimeUs = 100.0;
    LoadDriver driver(rig.kernel, app, gen, stats::Rng(1), dc);

    rig.kernel.start();
    driver.start();
    rig.eq.runUntil(sim::msToCycles(500.0));

    EXPECT_EQ(driver.completed(), 10u);
    EXPECT_EQ(driver.injected(), 10u);
    EXPECT_EQ(rig.kernel.completedRequests(), 10u);
}

TEST(LoadDriver, AllStagesExecuteAndAttribute)
{
    Rig rig;
    TwoTierGen gen;
    ServerApp app(rig.kernel, gen.tiers());
    LoadDriver::Config dc;
    dc.concurrency = 1; // serial: exact per-request expectations
    dc.targetRequests = 5;
    LoadDriver driver(rig.kernel, app, gen, stats::Rng(2), dc);

    rig.kernel.start();
    driver.start();
    rig.eq.runUntil(sim::msToCycles(500.0));

    for (os::RequestId id : driver.requestIds()) {
        const auto &info = rig.kernel.request(id);
        ASSERT_TRUE(info.done);
        // 10000 + 20000 + 5000 user instructions plus kernel costs.
        EXPECT_GT(info.totals.instructions, 35000.0);
        EXPECT_LT(info.totals.instructions, 70000.0);
        // The back-tier stat syscall and the channel hops appear in
        // the request's syscall sequence.
        bool has_stat = false;
        int sends = 0;
        for (os::Sys s : info.syscalls) {
            has_stat = has_stat || s == os::Sys::stat;
            sends += s == os::Sys::send;
        }
        EXPECT_TRUE(has_stat);
        EXPECT_GE(sends, 3); // front->back, back->front, front->reply
    }
}

TEST(LoadDriver, SpecLookupByRequestId)
{
    Rig rig;
    TwoTierGen gen;
    ServerApp app(rig.kernel, gen.tiers());
    LoadDriver::Config dc;
    dc.concurrency = 2;
    dc.targetRequests = 6;
    LoadDriver driver(rig.kernel, app, gen, stats::Rng(3), dc);
    rig.kernel.start();
    driver.start();
    rig.eq.runUntil(sim::msToCycles(500.0));

    for (os::RequestId id : driver.requestIds()) {
        const RequestSpec *spec = driver.specOf(id);
        ASSERT_NE(spec, nullptr);
        EXPECT_EQ(spec->className, "twotier.req");
    }
    EXPECT_EQ(driver.specOf(9999), nullptr);
}

TEST(LoadDriver, ConcurrencyBoundsInFlightRequests)
{
    // With think time 0 and concurrency 1, no two requests overlap:
    // completion times are ordered and injections serialize.
    Rig rig;
    TwoTierGen gen;
    ServerApp app(rig.kernel, gen.tiers());
    LoadDriver::Config dc;
    dc.concurrency = 1;
    dc.targetRequests = 4;
    dc.thinkTimeUs = 1.0;
    LoadDriver driver(rig.kernel, app, gen, stats::Rng(4), dc);
    rig.kernel.start();
    driver.start();
    rig.eq.runUntil(sim::msToCycles(500.0));

    const auto &ids = driver.requestIds();
    ASSERT_EQ(ids.size(), 4u);
    for (std::size_t i = 1; i < ids.size(); ++i) {
        EXPECT_GE(rig.kernel.request(ids[i]).injected,
                  rig.kernel.request(ids[i - 1]).completed);
    }
}

TEST(WorkerLogic, IdleWorkerWaitsOnItsChannel)
{
    WorkerLogic w(7, {7, 8}, 9);
    const auto a = w.next();
    const auto *sys = std::get_if<os::ActSyscall>(&a);
    ASSERT_NE(sys, nullptr);
    EXPECT_EQ(sys->id, os::Sys::recv);
    EXPECT_EQ(sys->args.channel, 7);
}

TEST(WorkerLogic, ExecutesStageThenForwards)
{
    // Build a one-stage spec by hand and walk the worker through it.
    RequestSpec spec;
    StageSpec st;
    st.tier = 0;
    st.segments.push_back(seg(1000, 1.0, 0.0, 0.0, 0.0));
    st.segments.push_back(withSys(seg(2000, 1.0, 0.0, 0.0, 0.0),
                                  os::Sys::stat));
    spec.stages.push_back(st);

    WorkerLogic w(7, {7, 8}, 9);
    os::Message msg;
    msg.tag = 0;
    msg.payload = &spec;
    w.onMessage(msg);

    // Segment 1: plain exec.
    auto a1 = w.next();
    ASSERT_TRUE(std::holds_alternative<os::ActExec>(a1));
    EXPECT_DOUBLE_EQ(std::get<os::ActExec>(a1).instructions, 1000.0);

    // Segment 2: entry syscall, then exec.
    auto a2 = w.next();
    ASSERT_TRUE(std::holds_alternative<os::ActSyscall>(a2));
    EXPECT_EQ(std::get<os::ActSyscall>(a2).id, os::Sys::stat);
    auto a3 = w.next();
    ASSERT_TRUE(std::holds_alternative<os::ActExec>(a3));
    EXPECT_DOUBLE_EQ(std::get<os::ActExec>(a3).instructions, 2000.0);

    // Last stage: send to the reply channel.
    auto a4 = w.next();
    ASSERT_TRUE(std::holds_alternative<os::ActSyscall>(a4));
    const auto &send = std::get<os::ActSyscall>(a4);
    EXPECT_EQ(send.id, os::Sys::send);
    EXPECT_EQ(send.args.channel, 9);
    EXPECT_EQ(send.args.msg.tag, 1u);

    // After the send completes, the worker goes idle again.
    auto a5 = w.next();
    ASSERT_TRUE(std::holds_alternative<os::ActSyscall>(a5));
    EXPECT_EQ(std::get<os::ActSyscall>(a5).id, os::Sys::recv);
}

TEST(WorkerLogic, MiddleStageForwardsToNextTier)
{
    RequestSpec spec;
    for (int tier : {0, 1, 0}) {
        StageSpec st;
        st.tier = tier;
        st.segments.push_back(seg(1000, 1.0, 0.0, 0.0, 0.0));
        spec.stages.push_back(st);
    }

    WorkerLogic w(7, {7, 8}, 9);
    os::Message msg;
    msg.tag = 0;
    msg.payload = &spec;
    w.onMessage(msg);

    (void)w.next(); // exec stage 0
    auto fwd = w.next();
    ASSERT_TRUE(std::holds_alternative<os::ActSyscall>(fwd));
    const auto &send = std::get<os::ActSyscall>(fwd);
    // Stage 1 runs on tier 1 -> channel 8.
    EXPECT_EQ(send.args.channel, 8);
    EXPECT_EQ(send.args.msg.tag, 1u);
}

TEST(Builder, SegAndWithSysCompose)
{
    const auto s = seg(5000, 1.5, 0.02, 1024.0, 0.1, 1.3);
    EXPECT_DOUBLE_EQ(s.instructions, 5000.0);
    EXPECT_DOUBLE_EQ(s.params.baseCpi, 1.5);
    EXPECT_DOUBLE_EQ(s.params.curve.workingSetBytes, 1024.0);
    EXPECT_FALSE(s.hasSyscall);

    const auto w = withSys(s, os::Sys::open, 900, 1.4);
    EXPECT_TRUE(w.hasSyscall);
    EXPECT_EQ(w.sysId, os::Sys::open);
    EXPECT_DOUBLE_EQ(w.sysArgs.kernelInstructions, 900.0);

    const auto b = withBlockingSys(s, os::Sys::fsync, 200.0);
    EXPECT_EQ(b.sysArgs.behavior, os::SysBehavior::BlockTimed);
    EXPECT_DOUBLE_EQ(b.sysArgs.blockCycles,
                     static_cast<double>(sim::usToCycles(200.0)));
}

TEST(RequestSpecT, TotalsAcrossStages)
{
    RequestSpec spec;
    for (int i = 0; i < 3; ++i) {
        StageSpec st;
        st.tier = 0;
        st.segments.push_back(seg(1000.0 * (i + 1), 1.0, 0, 0, 0));
        spec.stages.push_back(st);
    }
    EXPECT_DOUBLE_EQ(spec.totalInstructions(), 6000.0);
    EXPECT_EQ(spec.totalSegments(), 3u);
}
