/**
 * @file
 * mdlint: markdown cross-reference checker for the repo's docs.
 *
 * Usage:
 *   mdlint [--root DIR] [--quiet]
 *
 * Walks every *.md under the root (skipping build trees, VCS
 * metadata, and the generated paper/snippet dumps), extracts inline
 * links outside fenced code blocks and inline code spans, and
 * verifies that
 *
 *   - every relative link resolves to a file or directory on disk,
 *   - every `#anchor` (same-file or into another markdown file)
 *     matches a heading under GitHub's slugification rules,
 *   - no link uses a filesystem-absolute path (those break the moment
 *     the repo is cloned anywhere else).
 *
 * External links (http/https/mailto) are out of scope -- checking
 * them needs a network, and CI has none.
 *
 * Exit status is 0 when every link resolves, 1 on broken links, 2 on
 * usage or I/O errors. Output order is deterministic: findings
 * sorted by (file, line, link).
 */

#include <algorithm>
#include <cctype>
#include <fstream>
#include <filesystem>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding
{
    std::string file; ///< Root-relative path of the linking file.
    std::size_t line = 0;
    std::string link;
    std::string reason;

    bool operator<(const Finding &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        return link < o.link;
    }
};

struct Link
{
    std::size_t line = 0;
    std::string target;
};

/** One parsed markdown file: its links and its heading slugs. */
struct MdFile
{
    std::vector<Link> links;
    std::set<std::string> slugs;
};

/** Directory names never descended into. */
bool
skipDir(const std::string &name)
{
    return name == ".git" || name == ".claude" || name == "Testing" ||
           name.rfind("build", 0) == 0;
}

/**
 * Files whose links are not linted: the paper dumps and the per-PR
 * issue brief are generated text, not maintained docs. Their
 * headings still feed the slug table so other docs may link to them.
 */
bool
skipLint(const std::string &relPath)
{
    return relPath == "PAPER.md" || relPath == "PAPERS.md" ||
           relPath == "SNIPPETS.md" || relPath == "ISSUE.md";
}

/**
 * GitHub heading slug: lowercase; markdown emphasis and code ticks
 * stripped; `[text](url)` collapsed to its text; every space becomes
 * a hyphen; all other punctuation is dropped (consecutive hyphens
 * are NOT collapsed). Duplicate slugs get -1, -2, ... suffixes.
 */
std::string
slugify(const std::string &heading)
{
    // Collapse [text](url) to text first so URL punctuation never
    // leaks into the slug.
    std::string text;
    for (std::size_t i = 0; i < heading.size(); ++i) {
        if (heading[i] == '[') {
            const std::size_t close = heading.find(']', i);
            const std::size_t paren = close != std::string::npos &&
                                              close + 1 < heading.size() &&
                                              heading[close + 1] == '('
                                          ? heading.find(')', close)
                                          : std::string::npos;
            if (close != std::string::npos &&
                paren != std::string::npos) {
                text += heading.substr(i + 1, close - i - 1);
                i = paren;
                continue;
            }
        }
        text += heading[i];
    }
    std::string slug;
    for (const char c : text) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (std::isalnum(u) != 0 || c == '_' || c == '-')
            slug += static_cast<char>(std::tolower(u));
        else if (c == ' ')
            slug += '-';
        // Everything else (`, *, ., :, /, ...) is dropped.
    }
    return slug;
}

/** Remove `inline code spans` so their contents are never parsed. */
std::string
stripCodeSpans(const std::string &line)
{
    std::string out;
    bool inSpan = false;
    for (const char c : line) {
        if (c == '`') {
            inSpan = !inSpan;
            continue;
        }
        if (!inSpan)
            out += c;
    }
    return out;
}

/** Extract `[text](target)` targets from one already-clean line. */
void
extractLinks(const std::string &line, std::size_t lineNo,
             std::vector<Link> &out)
{
    for (std::size_t i = 0; i + 1 < line.size(); ++i) {
        if (!(line[i] == ']' && line[i + 1] == '('))
            continue;
        // Balanced parens inside the URL (rare, but legal).
        std::size_t depth = 1;
        std::size_t j = i + 2;
        while (j < line.size() && depth > 0) {
            if (line[j] == '(')
                ++depth;
            else if (line[j] == ')')
                --depth;
            if (depth > 0)
                ++j;
        }
        if (j >= line.size())
            return; // Unterminated; nothing more to find.
        std::string target = line.substr(i + 2, j - i - 2);
        // `[x](url "title")`: the URL ends at the first space.
        const std::size_t space = target.find(' ');
        if (space != std::string::npos)
            target = target.substr(0, space);
        if (!target.empty())
            out.push_back({lineNo, target});
        i = j;
    }
}

/** Parse one markdown file into links + heading slugs. */
MdFile
parseMd(const fs::path &path)
{
    MdFile md;
    std::ifstream in(path);
    std::string line;
    std::size_t lineNo = 0;
    bool inFence = false;
    std::map<std::string, std::size_t> seen;
    while (std::getline(in, line)) {
        ++lineNo;
        std::string trimmed = line;
        trimmed.erase(0, trimmed.find_first_not_of(" \t"));
        if (trimmed.rfind("```", 0) == 0 ||
            trimmed.rfind("~~~", 0) == 0) {
            inFence = !inFence;
            continue;
        }
        if (inFence)
            continue;
        if (trimmed.rfind("#", 0) == 0) {
            std::size_t level = 0;
            while (level < trimmed.size() && trimmed[level] == '#')
                ++level;
            if (level <= 6 && level < trimmed.size() &&
                trimmed[level] == ' ') {
                std::string slug =
                    slugify(trimmed.substr(level + 1));
                const std::size_t n = seen[slug]++;
                if (n > 0) {
                    slug += '-';
                    slug += std::to_string(n);
                }
                md.slugs.insert(slug);
            }
        }
        extractLinks(stripCodeSpans(line), lineNo, md.links);
    }
    return md;
}

bool
isExternal(const std::string &target)
{
    return target.rfind("http://", 0) == 0 ||
           target.rfind("https://", 0) == 0 ||
           target.rfind("mailto:", 0) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::cerr << "usage: mdlint [--root DIR] [--quiet]\n";
            return 2;
        }
    }
    std::error_code ec;
    root = fs::canonical(root, ec);
    if (ec) {
        std::cerr << "mdlint: bad root: " << ec.message() << '\n';
        return 2;
    }

    // Deterministic order: collect, then sort by relative path.
    std::vector<fs::path> files;
    fs::recursive_directory_iterator it(root, ec), end;
    for (; !ec && it != end; it.increment(ec)) {
        if (it->is_directory() &&
            skipDir(it->path().filename().string())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() &&
            it->path().extension() == ".md")
            files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());

    // Slugs for every file (link targets), links for linted ones.
    std::map<std::string, MdFile> parsed; // keyed root-relative
    for (const auto &f : files)
        parsed[fs::relative(f, root).string()] = parseMd(f);

    std::vector<Finding> findings;
    std::size_t checked = 0;
    for (const auto &[rel, md] : parsed) {
        if (skipLint(rel))
            continue;
        const fs::path dir = (root / rel).parent_path();
        for (const auto &link : md.links) {
            if (isExternal(link.target))
                continue;
            ++checked;
            const std::size_t hash = link.target.find('#');
            const std::string pathPart =
                hash == std::string::npos
                    ? link.target
                    : link.target.substr(0, hash);
            const std::string anchor =
                hash == std::string::npos
                    ? std::string{}
                    : link.target.substr(hash + 1);

            if (!pathPart.empty() && pathPart.front() == '/') {
                findings.push_back({rel, link.line, link.target,
                                    "absolute path (breaks outside "
                                    "this checkout)"});
                continue;
            }
            std::string targetRel = rel; // Same-file anchors.
            if (!pathPart.empty()) {
                const fs::path resolved =
                    fs::weakly_canonical(dir / pathPart, ec);
                if (ec || !fs::exists(resolved)) {
                    findings.push_back({rel, link.line, link.target,
                                        "target does not exist"});
                    continue;
                }
                targetRel = fs::relative(resolved, root).string();
            }
            if (anchor.empty())
                continue;
            const auto tgt = parsed.find(targetRel);
            if (tgt == parsed.end()) {
                findings.push_back({rel, link.line, link.target,
                                    "anchor into a non-markdown "
                                    "target"});
                continue;
            }
            if (tgt->second.slugs.count(anchor) == 0)
                findings.push_back({rel, link.line, link.target,
                                    "no heading with this anchor in " +
                                        targetRel});
        }
    }

    std::sort(findings.begin(), findings.end());
    for (const auto &f : findings)
        std::cout << f.file << ':' << f.line << ": broken link '"
                  << f.link << "': " << f.reason << '\n';
    if (!quiet)
        std::cout << "mdlint: " << checked << " link(s) in "
                  << parsed.size() << " file(s), "
                  << findings.size() << " broken\n";
    return findings.empty() ? 0 : 1;
}
