/**
 * @file
 * rbvlint v2 baseline implementation.
 */

#include "rbvlint/baseline.hh"

#include <algorithm>
#include <map>

namespace rbvlint {

std::string
Baseline::key(const Violation &v)
{
    return v.rule + "|" + v.path + "|" + v.message;
}

bool
Baseline::parse(const std::string &text, Baseline &out,
                std::string &error)
{
    std::size_t start = 0;
    int lineNo = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        std::string line = text.substr(start, end - start);
        start = end + 1;
        ++lineNo;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();

        std::size_t firstNonSpace = line.find_first_not_of(" \t");
        if (firstNonSpace == std::string::npos ||
            line[firstNonSpace] == '#')
            continue;

        const std::size_t p1 = line.find('|');
        const std::size_t p2 =
            p1 == std::string::npos ? std::string::npos
                                    : line.find('|', p1 + 1);
        if (p2 == std::string::npos) {
            error = "baseline line " + std::to_string(lineNo) +
                    ": expected rule|path|message, got: " + line;
            return false;
        }
        out.entries.push_back(line);
        if (start > text.size())
            break;
    }
    return true;
}

void
Baseline::add(const Violation &v)
{
    entries.push_back(key(v));
}

BaselineMatch
Baseline::match(const std::vector<Violation> &findings) const
{
    BaselineMatch result;
    std::map<std::string, int> budget;
    for (const std::string &e : entries)
        ++budget[e];

    for (const Violation &v : findings) {
        auto it = budget.find(key(v));
        if (it != budget.end() && it->second > 0) {
            --it->second;
            result.baselined.push_back(v);
        } else {
            result.fresh.push_back(v);
        }
    }
    for (const auto &[entry, remaining] : budget)
        for (int k = 0; k < remaining; ++k)
            result.stale.push_back(entry);
    return result;
}

std::string
Baseline::serialize() const
{
    std::vector<std::string> sorted = entries;
    std::sort(sorted.begin(), sorted.end());
    std::string out =
        "# rbvlint baseline: grandfathered findings, one\n"
        "# rule|path|message per line. New findings fail the run;\n"
        "# entries that no longer match fail it too, so this file\n"
        "# only ever shrinks. Regenerate with --write-baseline.\n";
    for (const std::string &e : sorted) {
        out += e;
        out += '\n';
    }
    return out;
}

} // namespace rbvlint
