/**
 * @file
 * rbvlint v2 baseline: grandfathered findings.
 *
 * A baseline file holds one `rule|path|message` line per accepted
 * pre-existing finding (no line numbers, so ordinary edits above a
 * finding do not churn the file). At report time each fresh finding
 * consumes one matching baseline entry; leftovers on either side are
 * failures:
 *
 *  - a finding with no entry is NEW and fails the run;
 *  - an entry with no finding is STALE and also fails the run, which
 *    forces the committed baseline to shrink monotonically as debt is
 *    paid down (CI additionally asserts the committed file matches a
 *    fresh `--write-baseline` run bit for bit).
 */

#ifndef RBVLINT_BASELINE_HH
#define RBVLINT_BASELINE_HH

#include <string>
#include <vector>

#include "rbvlint/rules.hh"

namespace rbvlint {

/** Result of matching fresh findings against a baseline. */
struct BaselineMatch
{
    std::vector<Violation> fresh;     ///< Not in the baseline: fail.
    std::vector<Violation> baselined; ///< Matched an entry: accepted.
    std::vector<std::string> stale;   ///< Unmatched entries: fail.
};

class Baseline
{
  public:
    /**
     * Parse baseline text: one `rule|path|message` per line, '#'
     * comments and blank lines ignored. Returns false with @p error
     * set on a line with fewer than two '|' separators.
     */
    static bool parse(const std::string &text, Baseline &out,
                      std::string &error);

    /** Add one accepted finding. */
    void add(const Violation &v);

    std::size_t size() const { return entries.size(); }

    /**
     * Match @p findings against the baseline. Duplicate entries
     * match multiset-style: two identical baseline lines absorb at
     * most two identical findings.
     */
    BaselineMatch match(const std::vector<Violation> &findings) const;

    /** Serialize, sorted, with a header comment. */
    std::string serialize() const;

    /** The canonical `rule|path|message` key for one finding. */
    static std::string key(const Violation &v);

  private:
    std::vector<std::string> entries;
};

} // namespace rbvlint

#endif // RBVLINT_BASELINE_HH
