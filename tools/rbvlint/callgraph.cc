/**
 * @file
 * rbvlint v2 call-graph construction and reachability.
 */

#include "rbvlint/callgraph.hh"

#include <algorithm>
#include <deque>

namespace rbvlint {

CallGraph::CallGraph(const std::vector<TuUnit> &units) : units_(&units)
{
    for (std::size_t u = 0; u < units.size(); ++u)
        for (std::size_t f = 0; f < units[u].syms.functions.size();
             ++f) {
            byName_[units[u].syms.functions[f].name].push_back(
                nodes.size());
            nodes.push_back(FuncRef{u, f});
        }

    edges.resize(nodes.size());
    for (std::size_t id = 0; id < nodes.size(); ++id) {
        std::vector<std::size_t> &out = edges[id];
        for (const CallSite &cs : fn(id).calls) {
            auto it = byName_.find(cs.name);
            if (it == byName_.end())
                continue;
            out.insert(out.end(), it->second.begin(),
                       it->second.end());
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
    }
}

const std::vector<std::size_t> &
CallGraph::byName(const std::string &name) const
{
    static const std::vector<std::size_t> empty;
    auto it = byName_.find(name);
    return it == byName_.end() ? empty : it->second;
}

std::vector<std::size_t>
CallGraph::rootsInPaths(const std::vector<std::string> &prefixes) const
{
    std::vector<std::size_t> roots;
    for (std::size_t id = 0; id < nodes.size(); ++id) {
        const std::string &path = pathOf(id);
        for (const std::string &p : prefixes)
            if (path.size() >= p.size() &&
                path.compare(0, p.size(), p) == 0) {
                roots.push_back(id);
                break;
            }
    }
    return roots;
}

std::vector<bool>
CallGraph::calleeClosure(const std::vector<std::size_t> &roots) const
{
    std::vector<bool> seen(nodes.size(), false);
    std::deque<std::size_t> work;
    for (std::size_t r : roots)
        if (r < seen.size() && !seen[r]) {
            seen[r] = true;
            work.push_back(r);
        }
    while (!work.empty()) {
        const std::size_t id = work.front();
        work.pop_front();
        for (std::size_t next : edges[id])
            if (!seen[next]) {
                seen[next] = true;
                work.push_back(next);
            }
    }
    return seen;
}

} // namespace rbvlint
