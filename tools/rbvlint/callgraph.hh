/**
 * @file
 * rbvlint v2 whole-tree call graph.
 *
 * Nodes are every FunctionDef parsed from every translation unit;
 * edges are name-resolved call sites (a call `foo(...)` links to every
 * parsed function named `foo`, regardless of class — deliberate
 * over-approximation, since the scanner has no type information).
 * The passes only consume reachability closures, so extra edges cost
 * precision, never soundness, for the "does X flow to Y" questions
 * the rules ask.
 */

#ifndef RBVLINT_CALLGRAPH_HH
#define RBVLINT_CALLGRAPH_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "rbvlint/parser.hh"

namespace rbvlint {

/** Global function id: (unit index, function index) flattened. */
struct FuncRef
{
    std::size_t unit;
    std::size_t func;
};

class CallGraph
{
  public:
    /** Build from all parsed units; @p units must outlive the graph. */
    explicit CallGraph(const std::vector<TuUnit> &units);

    std::size_t size() const { return nodes.size(); }

    const FuncRef &ref(std::size_t id) const { return nodes[id]; }

    const FunctionDef &
    fn(std::size_t id) const
    {
        const FuncRef &r = nodes[id];
        return units_->at(r.unit).syms.functions[r.func];
    }

    const std::string &
    pathOf(std::size_t id) const
    {
        return units_->at(nodes[id].unit).path;
    }

    /** Ids of every function whose name is @p name. */
    const std::vector<std::size_t> &byName(const std::string &name) const;

    /** Ids of functions defined in files starting with any prefix. */
    std::vector<std::size_t>
    rootsInPaths(const std::vector<std::string> &prefixes) const;

    /**
     * Forward closure: every function reachable from @p roots along
     * call edges, roots included. Indexed by function id.
     */
    std::vector<bool> calleeClosure(const std::vector<std::size_t> &roots) const;

  private:
    const std::vector<TuUnit> *units_;
    std::vector<FuncRef> nodes;
    std::map<std::string, std::vector<std::size_t>> byName_;
    std::vector<std::vector<std::size_t>> edges; ///< id -> callee ids.
};

} // namespace rbvlint

#endif // RBVLINT_CALLGRAPH_HH
