/**
 * @file
 * rbvlint token scanner implementation.
 */

#include "rbvlint/lexer.hh"

#include <cctype>
#include <cstddef>

namespace rbvlint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identCont(char c)
{
    return identStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

/**
 * Extract pragmas from one comment's text. Accepted forms:
 *   rbvlint: allow(R2)
 *   rbvlint: allow(global-state, units)
 *   rbvlint: guarded_by(mu)
 */
void
parsePragmas(const std::string &comment, int line, bool standalone,
             std::vector<AllowPragma> &allows,
             std::vector<GuardPragma> &guards)
{
    const std::string tag = "rbvlint:";
    std::size_t at = comment.find(tag);
    if (at == std::string::npos)
        return;
    const std::size_t allowAt = comment.find("allow", at + tag.size());
    const std::size_t guardAt =
        comment.find("guarded_by", at + tag.size());
    const bool isGuard =
        guardAt != std::string::npos &&
        (allowAt == std::string::npos || guardAt < allowAt);
    const std::size_t kw = isGuard ? guardAt : allowAt;
    if (kw == std::string::npos)
        return;
    const std::size_t open = comment.find('(', kw);
    if (open == std::string::npos)
        return;
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos)
        return;
    std::string inside = comment.substr(open + 1, close - open - 1);
    std::string cur;
    auto flush = [&] {
        if (!cur.empty()) {
            if (isGuard) {
                guards.push_back(GuardPragma{line, cur});
                if (standalone)
                    guards.push_back(GuardPragma{line + 1, cur});
            } else {
                allows.push_back(AllowPragma{line, cur});
                if (standalone)
                    allows.push_back(AllowPragma{line + 1, cur});
            }
            cur.clear();
        }
    };
    for (char c : inside) {
        if (c == ',' || c == ' ' || c == '\t')
            flush();
        else
            cur.push_back(c);
    }
    flush();
}

} // namespace

LexResult
lex(const std::string &text)
{
    LexResult res;

    // Split raw lines first (rules that need layout, e.g. header
    // guards, work off these).
    {
        std::string line;
        for (char c : text) {
            if (c == '\n') {
                res.rawLines.push_back(line);
                line.clear();
            } else {
                line.push_back(c);
            }
        }
        if (!line.empty())
            res.rawLines.push_back(line);
    }

    const std::size_t n = text.size();
    std::size_t i = 0;
    int line = 1;
    // Tracks whether any token was emitted on the current line, so a
    // comment can be recognized as standalone.
    int lastTokenLine = 0;

    auto advance = [&](std::size_t count) {
        for (std::size_t k = 0; k < count && i < n; ++k) {
            if (text[i] == '\n')
                ++line;
            ++i;
        }
    };

    while (i < n) {
        const char c = text[i];
        const char next = i + 1 < n ? text[i + 1] : '\0';

        if (c == '\n' || c == ' ' || c == '\t' || c == '\r' ||
            c == '\f' || c == '\v') {
            advance(1);
            continue;
        }

        // Line comment.
        if (c == '/' && next == '/') {
            const int at = line;
            std::string body;
            while (i < n && text[i] != '\n') {
                body.push_back(text[i]);
                ++i;
            }
            parsePragmas(body, at, lastTokenLine != at, res.allows,
                         res.guards);
            continue;
        }

        // Block comment.
        if (c == '/' && next == '*') {
            const int at = line;
            std::string body;
            advance(2);
            while (i < n && !(text[i] == '*' && i + 1 < n &&
                              text[i + 1] == '/')) {
                body.push_back(text[i]);
                advance(1);
            }
            advance(2);
            // A block comment is standalone when nothing preceded it
            // on its first line and it closes at end of a line.
            const bool standalone = lastTokenLine != at;
            parsePragmas(body, at, standalone, res.allows, res.guards);
            continue;
        }

        // Preprocessor directive: consume to end of (continued) line
        // but do not emit tokens; rules using directives read
        // rawLines instead.
        if (c == '#' &&
            (res.tokens.empty() || res.tokens.back().line != line)) {
            while (i < n && text[i] != '\n') {
                if (text[i] == '\\' && i + 1 < n &&
                    text[i + 1] == '\n')
                    advance(1); // skip the continuation backslash
                advance(1);
            }
            continue;
        }

        // String literal (handles escapes; raw strings are handled
        // by the identifier scanner below, which sees their prefix).
        if (c == '"') {
            const int at = line;
            advance(1);
            while (i < n && text[i] != '"') {
                if (text[i] == '\\')
                    advance(1);
                advance(1);
            }
            advance(1);
            res.tokens.push_back(Token{Tok::String, "", at});
            lastTokenLine = at;
            continue;
        }

        // Character literal. Distinguish from digit separators
        // (1'000'000): a quote directly after a number token's digits
        // is consumed by the number scanner below, so any quote here
        // starts a real character literal.
        if (c == '\'') {
            const int at = line;
            advance(1);
            while (i < n && text[i] != '\'') {
                if (text[i] == '\\')
                    advance(1);
                advance(1);
            }
            advance(1);
            res.tokens.push_back(Token{Tok::CharLit, "", at});
            lastTokenLine = at;
            continue;
        }

        if (identStart(c)) {
            const int at = line;
            std::string word;
            while (i < n && identCont(text[i])) {
                word.push_back(text[i]);
                ++i;
            }
            // Raw string literal: R"delim( ... )delim". The prefix
            // lexes as an identifier ending in R directly followed by
            // a quote; the contents (which may hold quotes, escapes,
            // and //-lookalikes) are skipped verbatim up to the
            // matching )delim" so tokenization never desyncs.
            if (i < n && text[i] == '"' &&
                (word == "R" || word == "LR" || word == "uR" ||
                 word == "UR" || word == "u8R")) {
                advance(1); // opening quote
                std::string delim;
                while (i < n && text[i] != '(' && text[i] != '"' &&
                       text[i] != ')' && text[i] != '\\' &&
                       text[i] != '\n' && delim.size() < 16) {
                    delim.push_back(text[i]);
                    advance(1);
                }
                advance(1); // opening '('
                const std::string closer = ")" + delim + "\"";
                const std::size_t end = text.find(closer, i);
                advance((end == std::string::npos ? n : end + closer.size()) - i);
                res.tokens.push_back(Token{Tok::String, "", at});
                lastTokenLine = at;
                continue;
            }
            res.tokens.push_back(Token{Tok::Ident, word, at});
            lastTokenLine = at;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            const int at = line;
            std::string num;
            while (i < n &&
                   (identCont(text[i]) || text[i] == '\'' ||
                    text[i] == '.' ||
                    ((text[i] == '+' || text[i] == '-') && i > 0 &&
                     (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                      text[i - 1] == 'p' || text[i - 1] == 'P')))) {
                num.push_back(text[i]);
                ++i;
            }
            res.tokens.push_back(Token{Tok::Number, num, at});
            lastTokenLine = at;
            continue;
        }

        res.tokens.push_back(Token{Tok::Punct, std::string(1, c), line});
        lastTokenLine = line;
        advance(1);
    }

    return res;
}

} // namespace rbvlint
