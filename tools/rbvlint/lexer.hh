/**
 * @file
 * Token scanner for rbvlint.
 *
 * A deliberately small C++ lexer: it splits a translation unit into
 * identifiers, literals, punctuation, and preprocessor directives,
 * strips comments and string contents (so rule matching never fires
 * on prose), and records `// rbvlint: allow(<rule>)` escape pragmas
 * with the lines they cover.
 */

#ifndef RBVLINT_LEXER_HH
#define RBVLINT_LEXER_HH

#include <string>
#include <utility>
#include <vector>

namespace rbvlint {

enum class Tok
{
    Ident,   ///< Identifier or keyword.
    Number,  ///< Numeric literal.
    String,  ///< String literal (text dropped).
    CharLit, ///< Character literal (text dropped).
    Punct,   ///< One punctuation rune ("::" is two tokens ':' ':').
};

struct Token
{
    Tok kind;
    std::string text;
    int line; ///< 1-based.
};

/**
 * One `rbvlint: allow(<rules>)` pragma. It suppresses matching
 * violations on the line it appears on and, when the comment stands
 * alone, on the following line.
 */
struct AllowPragma
{
    int line;
    std::string rule; ///< Rule spec as written; "*" allows all.
};

/**
 * One `rbvlint: guarded_by(<mutex>)` annotation. It binds the field
 * declared on its line (or, when the comment stands alone, on the
 * following line) to the named mutex member for R8-lock-discipline.
 */
struct GuardPragma
{
    int line;
    std::string mutexName;
};

struct LexResult
{
    std::vector<Token> tokens;
    std::vector<AllowPragma> allows;
    std::vector<GuardPragma> guards;
    std::vector<std::string> rawLines; ///< Verbatim source lines.
};

/** Tokenize one file's contents. Never throws on malformed input. */
LexResult lex(const std::string &text);

} // namespace rbvlint

#endif // RBVLINT_LEXER_HH
