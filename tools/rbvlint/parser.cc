/**
 * @file
 * rbvlint v2 per-TU parser implementation.
 *
 * Two phases over one file's token stream:
 *
 *  1. A statement walk with a brace-matched scope stack (the same
 *     trick the per-file rule engine uses, upgraded to carry names)
 *     finds function definitions, class fields, constructors, and
 *     namespace-scope variables, and records each function's body
 *     token range.
 *  2. A body scan over each recorded range extracts call sites, RNG
 *     draws, container iterations, interesting locals, function-local
 *     statics, and held locks.
 *
 * Everything is heuristic but deterministic; the passes only act on
 * names they can resolve, so unrecognized constructs degrade to
 * silence, not to false positives.
 */

#include "rbvlint/parser.hh"

#include <algorithm>
#include <cctype>
#include <set>

namespace rbvlint {

namespace {

const std::set<std::string> &
unorderedNames()
{
    static const std::set<std::string> names = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    return names;
}

/** Engine types: the repo's generators plus the std engines. */
const std::set<std::string> &
engineTypeNames()
{
    static const std::set<std::string> names = {
        "Rng",           "SplitMix64",    "mt19937",
        "mt19937_64",    "minstd_rand",   "minstd_rand0",
        "ranlux24",      "ranlux48",      "ranlux24_base",
        "ranlux48_base", "knuth_b",       "default_random_engine",
    };
    return names;
}

/** Draw-family method names on engine objects. */
const std::set<std::string> &
drawMethodNames()
{
    static const std::set<std::string> names = {
        "uniform", "uniformInt", "exponential", "normal",
        "logNormal", "discrete",  "next",        "split",
        "sample",  "operator",
    };
    return names;
}

/** Identifiers that look like calls but are control flow / builtins. */
const std::set<std::string> &
callKeywords()
{
    static const std::set<std::string> names = {
        "if",      "for",       "while",    "switch",  "return",
        "catch",   "sizeof",    "alignof",  "alignas", "decltype",
        "noexcept", "throw",    "new",      "delete",  "asm",
        "static_assert", "defined", "requires", "typeid",
    };
    return names;
}

const std::set<std::string> &
lockTypes()
{
    static const std::set<std::string> names = {
        "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
    return names;
}

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

enum class Scope
{
    File,
    Namespace,
    Class,
    Enum,
    Function,
    Braces,
};

struct ScopeEntry
{
    Scope kind;
    std::string name; ///< Class name for Class scopes.
    int func = -1;    ///< Index into functions for Function scopes.
};

class Parser
{
  public:
    Parser(const std::string &path, const LexResult &lr)
        : path(path), lr(lr)
    {
        (void)this->path;
    }

    TuSymbols
    run()
    {
        walk();
        for (auto &f : out.functions)
            scanBody(f);
        return std::move(out);
    }

  private:
    const Token &
    tk(std::size_t i) const
    {
        return lr.tokens[i];
    }

    bool
    is(std::size_t i, const char *text) const
    {
        return i < lr.tokens.size() && lr.tokens[i].text == text;
    }

    bool
    isIdent(std::size_t i) const
    {
        return i < lr.tokens.size() &&
               lr.tokens[i].kind == Tok::Ident;
    }

    /** Index just past a balanced template-argument group at @p i. */
    std::size_t
    skipAngles(std::size_t i) const
    {
        if (!is(i, "<"))
            return i;
        int depth = 0;
        const std::size_t n = lr.tokens.size();
        for (std::size_t k = i; k < n && k < i + 400; ++k) {
            if (is(k, "<"))
                ++depth;
            else if (is(k, ">") && --depth == 0)
                return k + 1;
            else if (is(k, ";") || is(k, "{"))
                break; // not a template group after all
        }
        return i + 1;
    }

    // ---- Phase 1: statement walk. ---------------------------------

    bool
    stmtHas(const std::vector<std::size_t> &stmt,
            const char *text) const
    {
        for (std::size_t i : stmt)
            if (tk(i).text == text)
                return true;
        return false;
    }

    void
    walk()
    {
        scopes.assign(1, ScopeEntry{Scope::File, "", -1});
        std::vector<std::size_t> stmt;

        const std::size_t n = lr.tokens.size();
        for (std::size_t i = 0; i < n; ++i) {
            const Token &t = tk(i);
            if (t.kind != Tok::Punct) {
                stmt.push_back(i);
                continue;
            }
            if (t.text == "{") {
                analyzeStmt(stmt, '{');
                scopes.push_back(classifyBrace(stmt, i));
                stmt.clear();
            } else if (t.text == "}") {
                if (scopes.size() > 1) {
                    if (scopes.back().kind == Scope::Function &&
                        scopes.back().func >= 0)
                        out.functions[static_cast<std::size_t>(
                                          scopes.back().func)]
                            .tokEnd = i;
                    scopes.pop_back();
                }
                stmt.clear();
            } else if (t.text == ";") {
                analyzeStmt(stmt, ';');
                stmt.clear();
            } else if (t.text == ":" &&
                       scopes.back().kind == Scope::Class &&
                       stmt.size() == 1 &&
                       (tk(stmt[0]).text == "public" ||
                        tk(stmt[0]).text == "private" ||
                        tk(stmt[0]).text == "protected")) {
                stmt.clear(); // access specifier
            } else {
                stmt.push_back(i);
            }
        }
    }

    ScopeEntry
    classifyBrace(const std::vector<std::size_t> &stmt,
                  std::size_t brace_index)
    {
        const ScopeEntry &cur = scopes.back();

        // Inside a function, every brace is body structure; keep
        // attributing tokens to the enclosing function.
        if (cur.kind == Scope::Function || cur.kind == Scope::Braces)
            return ScopeEntry{Scope::Braces, "", cur.func};

        if (stmtHas(stmt, "namespace"))
            return ScopeEntry{Scope::Namespace, "", -1};
        if (stmtHas(stmt, "enum"))
            return ScopeEntry{Scope::Enum, "", -1};
        if (stmtHas(stmt, "="))
            return ScopeEntry{Scope::Braces, "", -1};
        if (stmtHas(stmt, "class") || stmtHas(stmt, "struct") ||
            stmtHas(stmt, "union")) {
            // Last keyword wins so `template <class T> struct Foo`
            // names Foo, not T.
            std::string name;
            for (std::size_t k = 0; k < stmt.size(); ++k) {
                const std::string &w = tk(stmt[k]).text;
                if ((w == "class" || w == "struct" || w == "union") &&
                    k + 1 < stmt.size() && isIdent(stmt[k + 1]))
                    name = tk(stmt[k + 1]).text;
            }
            if (!name.empty())
                registerClass(name, tk(stmt[0]).line);
            return ScopeEntry{Scope::Class, name, -1};
        }
        if (stmtHas(stmt, "(")) {
            const int fn = extractFunction(stmt, brace_index);
            if (fn >= 0)
                return ScopeEntry{Scope::Function, "", fn};
        }
        return ScopeEntry{Scope::Braces, "", -1};
    }

    int
    classIndex(const std::string &name)
    {
        for (std::size_t i = 0; i < out.classes.size(); ++i)
            if (out.classes[i].name == name)
                return static_cast<int>(i);
        return -1;
    }

    void
    registerClass(const std::string &name, int line)
    {
        if (classIndex(name) < 0)
            out.classes.push_back(ClassDef{name, line, false});
    }

    /**
     * Try to read @p stmt (terminated by the `{` at @p brace_index)
     * as a function definition header. Returns the new function's
     * index, or -1 when the statement is not a function.
     */
    int
    extractFunction(const std::vector<std::size_t> &stmt,
                    std::size_t brace_index)
    {
        // First '(' opens the parameter list; its preceding
        // identifier is the function name.
        std::size_t paren = stmt.size();
        for (std::size_t k = 0; k < stmt.size(); ++k)
            if (tk(stmt[k]).text == "(") {
                paren = k;
                break;
            }
        if (paren == stmt.size() || paren == 0)
            return -1;
        if (!isIdent(stmt[paren - 1]))
            return -1;
        std::string name = tk(stmt[paren - 1]).text;
        if (callKeywords().count(name))
            return -1;
        bool dtor = false;
        if (paren >= 2 && tk(stmt[paren - 2]).text == "~") {
            name = "~" + name;
            dtor = true;
        }

        FunctionDef fn;
        fn.name = name;
        fn.line = tk(stmt[paren - 1]).line;
        fn.tokBegin = brace_index + 1;
        fn.tokEnd = lr.tokens.size();

        // Class attribution: enclosing class scope, else the last
        // `Qualifier::` before the name (out-of-class definition).
        if (scopes.back().kind == Scope::Class) {
            fn.className = scopes.back().name;
        } else {
            std::size_t q = paren - 1;
            if (dtor && q > 0)
                --q; // skip '~'
            if (q >= 3 && tk(stmt[q - 1]).text == ":" &&
                tk(stmt[q - 2]).text == ":" && isIdent(stmt[q - 3]))
                fn.className = tk(stmt[q - 3]).text;
        }

        // Parameter list: collect identifiers (types and names both;
        // used only as a resolution whitelist) up to the matching ')'.
        int depth = 0;
        std::size_t close = stmt.size();
        for (std::size_t k = paren; k < stmt.size(); ++k) {
            if (tk(stmt[k]).text == "(")
                ++depth;
            else if (tk(stmt[k]).text == ")" && --depth == 0) {
                close = k;
                break;
            }
            if (k > paren && isIdent(stmt[k]))
                fn.params.push_back(tk(stmt[k]).text);
        }

        // Constructor? Record the class's seeding discipline.
        if (!fn.className.empty() && fn.name == fn.className)
            noteCtorParams(fn.className, fn.line, fn.params);

        // Member-initializer list: its calls still count as edges
        // (constructors routinely derive child streams there).
        std::vector<CallSite> initCalls;
        for (std::size_t k = close; k + 1 < stmt.size(); ++k) {
            if (isIdent(stmt[k]) && tk(stmt[k + 1]).text == "(" &&
                !callKeywords().count(tk(stmt[k]).text))
                initCalls.push_back(
                    CallSite{tk(stmt[k]).text, tk(stmt[k]).line});
        }
        fn.calls = std::move(initCalls);

        out.functions.push_back(std::move(fn));
        return static_cast<int>(out.functions.size()) - 1;
    }

    /** Mark @p className seed-disciplined if a ctor param carries a
     *  seed or an RNG stream. */
    void
    noteCtorParams(const std::string &className, int line,
                   const std::vector<std::string> &params)
    {
        registerClass(className, line);
        bool seeded = false;
        for (const auto &p : params) {
            const std::string low = lowered(p);
            if (low.find("seed") != std::string::npos ||
                low.find("rng") != std::string::npos ||
                engineTypeNames().count(p))
                seeded = true;
        }
        if (seeded)
            out.classes[static_cast<std::size_t>(
                            classIndex(className))]
                .seedCtor = true;
    }

    /** Declaration name: nearest identifier before @p stop, walking
     *  back over array-extent brackets. */
    int
    declNameIndex(const std::vector<std::size_t> &stmt,
                  std::size_t stop) const
    {
        std::size_t k = stop;
        while (k > 0) {
            --k;
            if (tk(stmt[k]).text == "]") {
                int depth = 0;
                while (k > 0) {
                    if (tk(stmt[k]).text == "]")
                        ++depth;
                    else if (tk(stmt[k]).text == "[" && --depth == 0)
                        break;
                    --k;
                }
                continue;
            }
            if (isIdent(stmt[k]))
                return static_cast<int>(k);
            return -1;
        }
        return -1;
    }

    void
    analyzeStmt(const std::vector<std::size_t> &stmt, char term)
    {
        if (stmt.empty())
            return;
        const Scope cur = scopes.back().kind;
        if (cur == Scope::Class)
            analyzeClassStmt(stmt, term);
        else if (cur == Scope::File || cur == Scope::Namespace)
            analyzeNamespaceStmt(stmt, term);
    }

    /** Class-scope statement: a field declaration or a member
     *  function declaration (constructors matter for seeding). */
    void
    analyzeClassStmt(const std::vector<std::size_t> &stmt, char term)
    {
        static const std::set<std::string> skipLead = {
            "using",   "typedef", "friend",    "template",
            "class",   "struct",  "enum",      "union",
            "operator", "public", "private",   "protected",
            "static_assert",
        };
        if (!isIdent(stmt[0]) || skipLead.count(tk(stmt[0]).text))
            return;
        const std::string &className = scopes.back().name;

        // A '(' means a member-function declaration; constructors
        // reveal the class's seeding discipline, the rest is noise.
        std::size_t paren = stmt.size();
        for (std::size_t k = 0; k < stmt.size(); ++k)
            if (tk(stmt[k]).text == "(") {
                paren = k;
                break;
            }
        if (paren != stmt.size()) {
            if (paren > 0 && isIdent(stmt[paren - 1]) &&
                tk(stmt[paren - 1]).text == className) {
                std::vector<std::string> params;
                int depth = 0;
                for (std::size_t k = paren; k < stmt.size(); ++k) {
                    if (tk(stmt[k]).text == "(")
                        ++depth;
                    else if (tk(stmt[k]).text == ")" && --depth == 0)
                        break;
                    if (k > paren && isIdent(stmt[k]))
                        params.push_back(tk(stmt[k]).text);
                }
                noteCtorParams(className,
                               tk(stmt[paren - 1]).line, params);
            }
            return;
        }

        // Field declaration. Name sits before '=' (initializer) or at
        // the end of the statement.
        std::size_t stop = stmt.size();
        for (std::size_t k = 0; k < stmt.size(); ++k)
            if (tk(stmt[k]).text == "=") {
                stop = k;
                break;
            }
        if (term == '{' && stop == stmt.size())
            return; // `Foo x{...}` handled via '=' or uninteresting
        const int nameIdx = declNameIndex(stmt, stop);
        if (nameIdx <= 0)
            return;

        FieldDef fd;
        fd.className = className;
        fd.name = tk(stmt[static_cast<std::size_t>(nameIdx)]).text;
        fd.line = tk(stmt[static_cast<std::size_t>(nameIdx)]).line;

        static const std::set<std::string> quals = {
            "static",  "mutable",  "const",       "constexpr",
            "constinit", "volatile", "inline",    "thread_local",
            "explicit", "virtual",
        };
        for (int k = 0; k < nameIdx; ++k) {
            const std::string &w =
                tk(stmt[static_cast<std::size_t>(k)]).text;
            if (quals.count(w))
                continue;
            if (!fd.type.empty())
                fd.type += ' ';
            fd.type += w;
        }
        for (std::size_t k : stmt) {
            const std::string &w = tk(k).text;
            if (unorderedNames().count(w))
                fd.unordered = true;
            if (w.find("mutex") != std::string::npos)
                fd.mutex = true;
            if (engineTypeNames().count(w))
                fd.engine = true;
            if (w == "const" || w == "constexpr" || w == "constinit")
                fd.immutable = true;
        }

        const int declLine = tk(stmt[0]).line;
        for (const auto &g : lr.guards)
            if (g.line == fd.line || g.line == declLine)
                fd.guardedBy = g.mutexName;

        out.fields.push_back(std::move(fd));
    }

    /** Namespace-scope statement: a mutable variable is shared state. */
    void
    analyzeNamespaceStmt(const std::vector<std::size_t> &stmt,
                         char term)
    {
        if (term != ';' && term != '{')
            return;

        // Strip leading storage qualifiers; `static` and
        // `thread_local` variables are still per-process (or
        // per-thread-but-shared-across-jobs) mutable state.
        std::size_t first = 0;
        static const std::set<std::string> leadQuals = {
            "static", "thread_local", "inline", "mutable"};
        while (first < stmt.size() && isIdent(stmt[first]) &&
               leadQuals.count(tk(stmt[first]).text))
            ++first;
        if (first >= stmt.size() || !isIdent(stmt[first]))
            return;

        static const std::set<std::string> skipLead = {
            "class",  "struct",  "union",   "enum",   "template",
            "using",  "typedef", "extern",  "friend", "namespace",
            "static_assert", "operator",
        };
        if (skipLead.count(tk(stmt[first]).text))
            return;

        bool immutable = false;
        bool hasParen = false;
        bool engine = false;
        for (std::size_t k : stmt) {
            const std::string &w = tk(k).text;
            if (w == "const" || w == "constexpr" || w == "constinit")
                immutable = true;
            if (w == "(")
                hasParen = true;
            if (engineTypeNames().count(w))
                engine = true;
        }
        if (immutable || hasParen)
            return;

        std::size_t stop = stmt.size();
        for (std::size_t k = 0; k < stmt.size(); ++k)
            if (tk(stmt[k]).text == "=") {
                stop = k;
                break;
            }
        const int nameIdx = declNameIndex(stmt, stop);
        // Require a type before the name: `x = ...;` is assignment.
        if (nameIdx <= static_cast<int>(first))
            return;
        out.nsMutables.push_back(
            NsVar{tk(stmt[static_cast<std::size_t>(nameIdx)]).text,
                  tk(stmt[static_cast<std::size_t>(nameIdx)]).line,
                  engine});
    }

    // ---- Phase 2: body scans. -------------------------------------

    void
    scanBody(FunctionDef &fn)
    {
        const std::size_t lo = fn.tokBegin;
        const std::size_t hi = std::min(fn.tokEnd, lr.tokens.size());

        for (std::size_t i = lo; i < hi; ++i) {
            const Token &t = tk(i);
            if (t.kind != Tok::Ident)
                continue;
            const std::string &w = t.text;

            // Call sites (free calls and method calls alike).
            if (is(i + 1, "(") && !callKeywords().count(w))
                fn.calls.push_back(CallSite{w, t.line});

            // RNG draws: obj.method(...) / obj->method(...).
            if (is(i + 1, ".") && isIdent(i + 2) && is(i + 3, "(") &&
                drawMethodNames().count(tk(i + 2).text))
                fn.draws.push_back(
                    DrawSite{w, tk(i + 2).text, tk(i + 2).line});
            if (is(i + 1, "-") && is(i + 2, ">") && isIdent(i + 3) &&
                is(i + 4, "(") &&
                drawMethodNames().count(tk(i + 3).text))
                fn.draws.push_back(
                    DrawSite{w, tk(i + 3).text, tk(i + 3).line});

            // Iterator-based iteration: obj.begin() / obj.cbegin().
            if (is(i + 1, ".") && isIdent(i + 2) && is(i + 3, "(") &&
                (tk(i + 2).text == "begin" ||
                 tk(i + 2).text == "cbegin"))
                fn.iters.push_back(IterSite{w, t.line});

            // Range-for: for (decl : obj).
            if (w == "for" && is(i + 1, "("))
                scanRangeFor(fn, i + 1, hi);

            // Interesting locals: unordered containers and engines.
            if (unorderedNames().count(w))
                scanLocalDecl(fn, i, hi, /*unordered=*/true);
            else if (engineTypeNames().count(w))
                scanLocalDecl(fn, i, hi, /*unordered=*/false);

            // Function-local statics.
            if (w == "static")
                scanStaticLocal(fn, i, hi);

            // Held locks: guard objects and explicit .lock().
            if (lockTypes().count(w))
                scanLockGuard(fn, i, hi);
            if (is(i + 1, ".") && isIdent(i + 2) && is(i + 3, "(") &&
                (tk(i + 2).text == "lock" ||
                 tk(i + 2).text == "lock_shared"))
                fn.locksHeld.push_back(w);
        }

        std::sort(fn.locksHeld.begin(), fn.locksHeld.end());
        fn.locksHeld.erase(
            std::unique(fn.locksHeld.begin(), fn.locksHeld.end()),
            fn.locksHeld.end());
    }

    /** Parse `( decl : obj )` starting at the '(' index @p open. */
    void
    scanRangeFor(FunctionDef &fn, std::size_t open, std::size_t hi)
    {
        int depth = 0;
        std::size_t colon = 0;
        std::size_t close = 0;
        for (std::size_t k = open; k < hi && k < open + 200; ++k) {
            if (is(k, "("))
                ++depth;
            else if (is(k, ")")) {
                if (--depth == 0) {
                    close = k;
                    break;
                }
            } else if (is(k, ":") && depth == 1 && !is(k + 1, ":") &&
                       !is(k - 1, ":") && colon == 0) {
                colon = k;
            }
        }
        if (colon == 0 || close == 0)
            return;

        // Receiver: strip a leading `this->`, then accept a single
        // identifier; chains ("a.b") are joined and left to the
        // passes, which skip what they cannot resolve.
        std::size_t k = colon + 1;
        if (is(k, "this") && is(k + 1, "-") && is(k + 2, ">"))
            k += 3;
        std::string object;
        int idents = 0;
        for (; k < close; ++k) {
            if (isIdent(k)) {
                if (!object.empty())
                    object += '.';
                object += tk(k).text;
                ++idents;
            } else if (!is(k, ".") &&
                       !(is(k, "-") && is(k + 1, ">"))) {
                if (!is(k, ">")) // tail of '->'
                    return;      // expression, not a plain receiver
            }
        }
        if (idents >= 1)
            fn.iters.push_back(IterSite{object, tk(colon).line});
    }

    /** Record a local declared by the type token at @p i. */
    void
    scanLocalDecl(FunctionDef &fn, std::size_t i, std::size_t hi,
                  bool unordered)
    {
        LocalVar v;
        v.unordered = unordered;
        v.engine = !unordered;
        v.line = tk(i).line;

        // `static stats::Rng r...` — look back over the qualifier
        // chain for a storage class.
        std::size_t back = i;
        for (int steps = 0; back > 0 && steps < 6; ++steps) {
            --back;
            const std::string &w = tk(back).text;
            if (w == ":" || w == "std" || w == "stats" ||
                w == "const")
                continue;
            if (w == "static")
                v.isStatic = true;
            break;
        }

        std::size_t k = skipAngles(i + 1);
        while (k < hi && (is(k, "&") || is(k, "*")))
            ++k;
        if (k >= hi || !isIdent(k))
            return; // temporary or cast — no named local
        v.name = tk(k).text;

        // Seeded when constructed with at least one argument or
        // copy/reference-bound from an existing stream; only a bare
        // `Rng r;` / `Rng r{};` is an unseeded engine.
        if (is(k + 1, "(") || is(k + 1, "{")) {
            const char *closeCh = is(k + 1, "(") ? ")" : "}";
            v.seeded = !is(k + 2, closeCh);
        } else if (is(k + 1, "=")) {
            v.seeded = true;
        }
        fn.locals.push_back(std::move(v));
    }

    /** Record a mutable `static` declaration inside a body. */
    void
    scanStaticLocal(FunctionDef &fn, std::size_t i, std::size_t hi)
    {
        std::size_t stop = 0;
        bool immutable = false;
        int angle = 0;
        for (std::size_t k = i + 1; k < hi && k < i + 60; ++k) {
            const std::string &w = tk(k).text;
            if (w == "const" || w == "constexpr" || w == "constinit")
                immutable = true;
            if (w == "<")
                ++angle;
            else if (w == ">" && angle > 0)
                --angle;
            else if (angle == 0 &&
                     (w == "=" || w == "(" || w == "{" || w == ";")) {
                stop = k;
                break;
            }
        }
        if (stop == 0 || immutable)
            return;
        // Nearest identifier before the initializer/terminator.
        std::size_t k = stop;
        while (k > i + 1) {
            --k;
            if (isIdent(k)) {
                fn.mutableStatics.push_back(
                    StaticLocal{tk(k).text, tk(k).line});
                return;
            }
            if (!is(k, "]") && !is(k, "[") && !is(k, ">"))
                return;
        }
    }

    /** Record the mutex names a guard object at @p i locks. */
    void
    scanLockGuard(FunctionDef &fn, std::size_t i, std::size_t hi)
    {
        // lock_guard<std::mutex> name(mu) — the paren group after the
        // declared name holds the mutex expression.
        std::size_t k = skipAngles(i + 1);
        while (k < hi && isIdent(k))
            ++k; // guard variable name
        if (k >= hi || (!is(k, "(") && !is(k, "{")))
            return;
        const bool paren = is(k, "(");
        int depth = 0;
        for (; k < hi && k < i + 80; ++k) {
            if (is(k, paren ? "(" : "{"))
                ++depth;
            else if (is(k, paren ? ")" : "}")) {
                if (--depth == 0)
                    return;
            } else if (isIdent(k) && depth >= 1 &&
                       tk(k).text != "this") {
                fn.locksHeld.push_back(tk(k).text);
            }
        }
    }

    const std::string &path;
    const LexResult &lr;
    TuSymbols out;
    std::vector<ScopeEntry> scopes;
};

} // namespace

TuSymbols
parseTu(const std::string &path, const LexResult &lex)
{
    return Parser(path, lex).run();
}

TuUnit
makeUnit(const std::string &path, const std::string &text)
{
    TuUnit unit;
    unit.path = path;
    unit.lex = lex(text);
    unit.syms = parseTu(path, unit.lex);
    return unit;
}

} // namespace rbvlint
