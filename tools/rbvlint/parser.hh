/**
 * @file
 * rbvlint v2 per-TU parser.
 *
 * A lightweight C++ "parser" one notch above the token scanner: it
 * walks a translation unit's token stream with a brace-matched scope
 * stack and extracts the symbols the interprocedural passes need —
 * function definitions (with their call sites, RNG draws, container
 * iterations, local statics, and held locks), class fields (with
 * container/mutex/engine classification and `guarded_by`
 * annotations), constructors' seeding discipline, and namespace-scope
 * mutable variables. It is deliberately not a C++ front end: it is
 * flow-insensitive, resolves names by identifier, and errs toward
 * recording too much (the passes resolve conservatively and stay
 * silent on anything they cannot attribute).
 */

#ifndef RBVLINT_PARSER_HH
#define RBVLINT_PARSER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "rbvlint/lexer.hh"

namespace rbvlint {

/** One call site inside a function body: `name(...)`. */
struct CallSite
{
    std::string name;
    int line;
};

/** One RNG draw: `object.method(...)` with a draw-family method. */
struct DrawSite
{
    std::string object; ///< Receiver identifier ("" if implicit).
    std::string method;
    int line;
};

/** One container iteration: range-for target or `.begin()` receiver. */
struct IterSite
{
    std::string object; ///< "a.b" chains stay joined (unresolvable).
    int line;
};

/** A function-local variable the passes care about. */
struct LocalVar
{
    std::string name;
    int line;
    bool unordered = false; ///< std::unordered_{map,set,...}.
    bool engine = false;    ///< stats::Rng / SplitMix64 / std engine.
    bool seeded = false;    ///< Declared with constructor arguments.
    bool isStatic = false;  ///< `static` local (shared across calls).
};

/** A mutable `static` declaration inside a function body. */
struct StaticLocal
{
    std::string name;
    int line;
};

struct FunctionDef
{
    std::string name;      ///< Unqualified ("run", "FaultSession").
    std::string className; ///< Enclosing/qualifying class, "" if free.
    int line = 0;
    std::size_t tokBegin = 0; ///< Body token range [tokBegin, tokEnd).
    std::size_t tokEnd = 0;
    std::vector<std::string> params; ///< Identifiers in the param list.
    std::vector<CallSite> calls;
    std::vector<DrawSite> draws;
    std::vector<IterSite> iters;
    std::vector<LocalVar> locals; ///< Unordered/engine locals only.
    std::vector<StaticLocal> mutableStatics;
    std::vector<std::string> locksHeld; ///< Mutexes locked in body.
};

struct FieldDef
{
    std::string className;
    std::string name;
    std::string type; ///< Declared type tokens, space-joined.
    int line = 0;
    bool unordered = false;
    bool mutex = false;
    bool engine = false;
    bool immutable = false;   ///< const/constexpr/constinit.
    std::string guardedBy;    ///< Mutex named by a guard annotation.
};

struct ClassDef
{
    std::string name;
    int line = 0;
    /**
     * True when a constructor (definition or declaration) takes a
     * seed or an RNG stream — the repo's keyed-stream discipline: a
     * member engine is legitimate only if the class is handed its
     * stream (or the seed to derive it) at construction.
     */
    bool seedCtor = false;
};

/** A mutable namespace-scope (or file-static) variable. */
struct NsVar
{
    std::string name;
    int line = 0;
    bool engine = false;
};

/** Everything the passes need to know about one translation unit. */
struct TuSymbols
{
    std::vector<FunctionDef> functions;
    std::vector<FieldDef> fields;
    std::vector<ClassDef> classes;
    std::vector<NsVar> nsMutables;
};

/** One parsed file: path + token stream + symbol table. */
struct TuUnit
{
    std::string path; ///< Repo-relative, forward slashes.
    LexResult lex;
    TuSymbols syms;
};

/** Build the symbol table for one lexed translation unit. */
TuSymbols parseTu(const std::string &path, const LexResult &lex);

/** Convenience: lex + parse into a TuUnit. */
TuUnit makeUnit(const std::string &path, const std::string &text);

} // namespace rbvlint

#endif // RBVLINT_PARSER_HH
