/**
 * @file
 * rbvlint v2 interprocedural pass implementations.
 */

#include "rbvlint/passes.hh"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

namespace rbvlint {

namespace {

constexpr char kR2[] = "R2-global-state";
constexpr char kR7[] = "R7-det-iter";
constexpr char kR8[] = "R8-lock-discipline";
constexpr char kR9[] = "R9-rng-stream";

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
underSrc(const std::string &path)
{
    return startsWith(path, "src/");
}

/** Directories the per-file R2 rule already covers unconditionally. */
bool
perFileR2Dir(const std::string &path)
{
    return startsWith(path, "src/sim/") ||
           startsWith(path, "src/core/") ||
           startsWith(path, "src/os/");
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Shared suppression: inline pragmas plus the allowlist. */
class Emitter
{
  public:
    Emitter(const Allowlist &allowlist, std::vector<Violation> &out)
        : allowlist(allowlist), out(out)
    {
    }

    void
    emit(const TuUnit &unit, int line, const char *rule,
         std::string message)
    {
        for (const AllowPragma &p : unit.lex.allows)
            if (p.line == line && ruleMatches(p.rule, rule))
                return;
        if (allowlist.allows(rule, unit.path))
            return;
        out.push_back(
            Violation{unit.path, line, rule, std::move(message)});
    }

  private:
    const Allowlist &allowlist;
    std::vector<Violation> &out;
};

/** Cross-TU class knowledge: fields by class, seeding discipline. */
struct ClassInfo
{
    std::vector<const FieldDef *> fields;
    bool seedCtor = false;
};

std::map<std::string, ClassInfo>
collectClasses(const std::vector<TuUnit> &units)
{
    std::map<std::string, ClassInfo> info;
    for (const TuUnit &u : units) {
        for (const FieldDef &fd : u.syms.fields)
            info[fd.className].fields.push_back(&fd);
        for (const ClassDef &cd : u.syms.classes)
            if (cd.seedCtor)
                info[cd.name].seedCtor = true;
    }
    return info;
}

const FieldDef *
findField(const std::map<std::string, ClassInfo> &classes,
          const std::string &className, const std::string &name)
{
    auto it = classes.find(className);
    if (it == classes.end())
        return nullptr;
    for (const FieldDef *fd : it->second.fields)
        if (fd->name == name)
            return fd;
    return nullptr;
}

// ---- R7-det-iter. -------------------------------------------------

void
passDetIter(const std::vector<TuUnit> &units, const CallGraph &graph,
            const std::map<std::string, ClassInfo> &classes,
            Emitter &em)
{
    // Result-bearing: everything the experiment drivers, observers,
    // and model builders call, transitively — whatever runs there can
    // leak container order into reports, metrics, or model state.
    const std::vector<bool> bearing = graph.calleeClosure(
        graph.rootsInPaths({"src/exp/", "src/obs/",
                            "src/core/model/"}));

    std::set<std::string> bearingClasses;
    for (std::size_t id = 0; id < graph.size(); ++id)
        if (bearing[id] && !graph.fn(id).className.empty())
            bearingClasses.insert(graph.fn(id).className);

    // Site A: iteration inside a result-bearing function over a
    // container the parser can attribute.
    for (std::size_t id = 0; id < graph.size(); ++id) {
        if (!bearing[id] || !underSrc(graph.pathOf(id)))
            continue;
        const FunctionDef &fn = graph.fn(id);
        const TuUnit &unit = units[graph.ref(id).unit];
        std::set<int> flaggedLines;
        for (const IterSite &it : fn.iters) {
            if (it.object.find('.') != std::string::npos)
                continue; // chained receiver: unresolvable
            bool unordered = false;
            for (const LocalVar &lv : fn.locals)
                if (lv.name == it.object && lv.unordered)
                    unordered = true;
            if (!unordered && !fn.className.empty()) {
                const FieldDef *fd =
                    findField(classes, fn.className, it.object);
                if (fd && fd->unordered)
                    unordered = true;
            }
            if (!unordered || !flaggedLines.insert(it.line).second)
                continue;
            em.emit(unit, it.line, kR7,
                    "iteration over unordered container '" +
                        it.object + "' in result-bearing function '" +
                        fn.name +
                        "'; order is nondeterministic — use an "
                        "ordered container or sort first");
        }
    }

    // Site B: an unordered field of a class whose methods are
    // result-bearing is a standing hazard even before anyone writes
    // the loop — the next `for (auto &e : field)` silently breaks
    // byte-identical output.
    for (const TuUnit &unit : units) {
        if (!underSrc(unit.path))
            continue;
        for (const FieldDef &fd : unit.syms.fields) {
            if (!fd.unordered || fd.immutable ||
                !bearingClasses.count(fd.className))
                continue;
            em.emit(unit, fd.line, kR7,
                    "unordered container field '" + fd.name +
                        "' in result-bearing class '" + fd.className +
                        "'; iteration order is nondeterministic — "
                        "use std::map/std::set");
        }
    }
}

// ---- R8-lock-discipline. ------------------------------------------

/**
 * Line of the first bare (or `this->`) mention of @p name inside
 * @p fn's body; -1 when the function never touches it. Mentions
 * through another object (`other.name`, `other->name`) belong to a
 * different instance and do not count.
 */
int
firstMention(const TuUnit &unit, const FunctionDef &fn,
             const std::string &name)
{
    const std::vector<Token> &toks = unit.lex.tokens;
    const std::size_t hi = std::min(fn.tokEnd, toks.size());
    for (std::size_t i = fn.tokBegin; i < hi; ++i) {
        if (toks[i].kind != Tok::Ident || toks[i].text != name)
            continue;
        if (i >= 2 && toks[i - 1].kind == Tok::Punct) {
            if (toks[i - 1].text == "." &&
                toks[i - 2].text != "this")
                continue;
            if (toks[i - 1].text == ">" && i >= 3 &&
                toks[i - 2].text == "-" &&
                toks[i - 3].text != "this")
                continue;
        }
        return toks[i].line;
    }
    return -1;
}

void
passLockDiscipline(const std::vector<TuUnit> &units,
                   const CallGraph &graph,
                   const std::map<std::string, ClassInfo> &classes,
                   Emitter &em)
{
    for (const TuUnit &unit : units) {
        for (const FieldDef &fd : unit.syms.fields) {
            if (fd.guardedBy.empty())
                continue;

            const FieldDef *mu =
                findField(classes, fd.className, fd.guardedBy);
            if (!mu || !mu->mutex) {
                em.emit(unit, fd.line, kR8,
                        "guarded_by(" + fd.guardedBy + ") on '" +
                            fd.name + "' does not name a mutex "
                            "member of '" + fd.className + "'");
                continue;
            }

            // Every member function that mentions the field must
            // hold the mutex; constructors, destructors, and
            // `*Locked` helpers (called under the lock by contract)
            // are exempt.
            for (std::size_t id = 0; id < graph.size(); ++id) {
                const FunctionDef &fn = graph.fn(id);
                if (fn.className != fd.className)
                    continue;
                if (fn.name == fd.className ||
                    fn.name == "~" + fd.className ||
                    endsWith(fn.name, "Locked"))
                    continue;
                if (std::find(fn.locksHeld.begin(),
                              fn.locksHeld.end(),
                              fd.guardedBy) != fn.locksHeld.end())
                    continue;
                const TuUnit &fu = units[graph.ref(id).unit];
                const int line = firstMention(fu, fn, fd.name);
                if (line < 0)
                    continue;
                em.emit(fu, line, kR8,
                        "field '" + fd.name + "' (guarded by '" +
                            fd.guardedBy + "') accessed in '" +
                            fd.className + "::" + fn.name +
                            "' without holding '" + fd.guardedBy +
                            "'");
            }
        }
    }
}

// ---- R9-rng-stream. -----------------------------------------------

void
passRngStream(const std::vector<TuUnit> &units, const CallGraph &graph,
              const std::map<std::string, ClassInfo> &classes,
              Emitter &em)
{
    // A namespace-scope engine is shared by every job in the process.
    for (const TuUnit &unit : units) {
        if (!underSrc(unit.path))
            continue;
        for (const NsVar &v : unit.syms.nsMutables)
            if (v.engine)
                em.emit(unit, v.line, kR9,
                        "namespace-scope engine '" + v.name +
                            "' is shared across jobs; use a "
                            "per-injector stream or a (seed,id)-"
                            "keyed local");
    }

    for (std::size_t id = 0; id < graph.size(); ++id) {
        if (!underSrc(graph.pathOf(id)))
            continue;
        const FunctionDef &fn = graph.fn(id);
        const TuUnit &unit = units[graph.ref(id).unit];
        for (const DrawSite &d : fn.draws) {
            // 1. Local engine in this function.
            const LocalVar *local = nullptr;
            for (const LocalVar &lv : fn.locals)
                if (lv.engine && lv.name == d.object)
                    local = &lv;
            if (local) {
                if (local->isStatic)
                    em.emit(unit, d.line, kR9,
                            "draw '" + d.method +
                                "' on function-local static engine "
                                "'" + d.object +
                                "'; the stream is shared across "
                                "calls and jobs");
                else if (!local->seeded)
                    em.emit(unit, d.line, kR9,
                            "draw '" + d.method +
                                "' on unseeded engine '" + d.object +
                                "'; derive it from the experiment "
                                "seed (or a (seed,id) key)");
                continue;
            }
            // 2. A parameter: the caller owns the stream.
            if (std::find(fn.params.begin(), fn.params.end(),
                          d.object) != fn.params.end())
                continue;
            // 3. An engine field: fine iff the class is handed its
            // seed or stream at construction.
            if (!fn.className.empty()) {
                const FieldDef *fd =
                    findField(classes, fn.className, d.object);
                if (fd && fd->engine) {
                    auto it = classes.find(fn.className);
                    const bool seeded =
                        it != classes.end() && it->second.seedCtor;
                    if (!seeded)
                        em.emit(unit, d.line, kR9,
                                "draw '" + d.method +
                                    "' on engine field '" + d.object +
                                    "' of '" + fn.className +
                                    "', whose constructor takes no "
                                    "seed or stream");
                    continue;
                }
                if (fd)
                    continue; // a non-engine field; not a draw
            }
            // 4. A shared engine at namespace scope in this TU.
            for (const NsVar &v : unit.syms.nsMutables)
                if (v.engine && v.name == d.object)
                    em.emit(unit, d.line, kR9,
                            "draw '" + d.method +
                                "' on shared namespace-scope engine "
                                "'" + d.object + "'");
            // 5. Unresolvable receiver: stay silent.
        }
    }
}

// ---- Reachability-upgraded R2. ------------------------------------

void
passGlobalStateReach(const std::vector<TuUnit> &units,
                     const CallGraph &graph, Emitter &em)
{
    const std::vector<bool> reach = graph.calleeClosure(
        graph.rootsInPaths({"src/exp/runner.", "src/exp/serve."}));

    std::vector<bool> unitReachable(units.size(), false);
    for (std::size_t id = 0; id < graph.size(); ++id)
        if (reach[id])
            unitReachable[graph.ref(id).unit] = true;

    // Mutable statics inside reachable functions.
    for (std::size_t id = 0; id < graph.size(); ++id) {
        if (!reach[id])
            continue;
        const std::string &path = graph.pathOf(id);
        if (!underSrc(path) || perFileR2Dir(path))
            continue;
        const FunctionDef &fn = graph.fn(id);
        const TuUnit &unit = units[graph.ref(id).unit];
        for (const StaticLocal &s : fn.mutableStatics)
            em.emit(unit, s.line, kR2,
                    "mutable static local '" + s.name + "' in '" +
                        fn.name +
                        "' is reachable from the parallel "
                        "runner/serve loop");
    }

    // Mutable file-scope variables in TUs that define reachable code.
    for (std::size_t u = 0; u < units.size(); ++u) {
        if (!unitReachable[u] || !underSrc(units[u].path) ||
            perFileR2Dir(units[u].path))
            continue;
        for (const NsVar &v : units[u].syms.nsMutables)
            em.emit(units[u], v.line, kR2,
                    "mutable file-scope variable '" + v.name +
                        "' is reachable from the parallel "
                        "runner/serve loop");
    }
}

} // namespace

std::vector<Violation>
runTreePasses(const std::vector<TuUnit> &units, const CallGraph &graph,
              const Allowlist &allowlist)
{
    std::vector<Violation> out;
    Emitter em(allowlist, out);
    const std::map<std::string, ClassInfo> classes =
        collectClasses(units);

    passDetIter(units, graph, classes, em);
    passLockDiscipline(units, graph, classes, em);
    passRngStream(units, graph, classes, em);
    passGlobalStateReach(units, graph, em);
    return out;
}

std::vector<Violation>
analyzeTree(const std::vector<TuUnit> &units,
            const Allowlist &allowlist)
{
    std::vector<Violation> all;
    for (const TuUnit &u : units) {
        std::vector<Violation> v =
            lintLexed(u.path, u.lex, allowlist);
        all.insert(all.end(), v.begin(), v.end());
    }

    const CallGraph graph(units);
    std::vector<Violation> tree =
        runTreePasses(units, graph, allowlist);
    all.insert(all.end(), tree.begin(), tree.end());

    auto key = [](const Violation &v) {
        return std::tie(v.path, v.line, v.rule, v.message);
    };
    std::sort(all.begin(), all.end(),
              [&](const Violation &a, const Violation &b) {
                  return key(a) < key(b);
              });
    all.erase(std::unique(all.begin(), all.end(),
                          [&](const Violation &a, const Violation &b) {
                              return key(a) == key(b);
                          }),
              all.end());
    return all;
}

} // namespace rbvlint
