/**
 * @file
 * rbvlint v2 interprocedural passes.
 *
 * Flow-insensitive whole-tree rules layered on parser.hh symbol
 * tables and the callgraph.hh reachability closure:
 *
 *  - R7-det-iter:        iteration over std::unordered_{map,set,...}
 *                        in (or as a field of a class with) functions
 *                        whose results flow into reports, metrics, or
 *                        model state — iteration order varies across
 *                        libstdc++ versions and hash seeds, so any
 *                        order-dependent aggregate breaks the repo's
 *                        byte-identical determinism guarantee.
 *  - R8-lock-discipline: fields annotated `// rbvlint: guarded_by(mu)`
 *                        must only be touched by member functions that
 *                        hold `mu` (lock_guard/unique_lock/scoped_lock
 *                        or an explicit .lock()); constructors,
 *                        destructors, and `*Locked` helpers are exempt
 *                        by convention.
 *  - R9-rng-stream:      every RNG draw must come from a per-injector
 *                        stream or a (seed, id)-keyed engine — a
 *                        seeded local, a parameter, or an engine field
 *                        of a class whose constructor takes a seed or
 *                        stream. Unseeded, static-local, and
 *                        namespace-scope engines are shared across
 *                        jobs and break run-to-run determinism under
 *                        --jobs.
 *  - R2-global-state:    reachability upgrade of the per-file rule —
 *                        mutable statics and file-scope variables
 *                        anywhere in src/ that are reachable from the
 *                        parallel runner or the serve loop (the
 *                        per-file rule already covers src/sim,
 *                        src/core, src/os unconditionally; the tree
 *                        pass extends it to the rest of src/).
 *
 * Suppression works exactly as for the per-file rules: inline
 * `// rbvlint: allow(<rule>)` pragmas and allowlist entries.
 */

#ifndef RBVLINT_PASSES_HH
#define RBVLINT_PASSES_HH

#include <string>
#include <vector>

#include "rbvlint/callgraph.hh"
#include "rbvlint/parser.hh"
#include "rbvlint/rules.hh"

namespace rbvlint {

/** Run the interprocedural passes over all parsed units. */
std::vector<Violation> runTreePasses(const std::vector<TuUnit> &units,
                                     const CallGraph &graph,
                                     const Allowlist &allowlist);

/**
 * Full v2 analysis: per-file rules (R1–R6) on every unit plus the
 * tree passes, merged and sorted by (path, line, rule). This is what
 * the driver and the tests call.
 */
std::vector<Violation> analyzeTree(const std::vector<TuUnit> &units,
                                   const Allowlist &allowlist);

} // namespace rbvlint

#endif // RBVLINT_PASSES_HH
