/**
 * @file
 * rbvlint driver: walk the tree, lint every C++ file, report.
 *
 * Usage:
 *   rbvlint [--root DIR] [--allowlist FILE] [--quiet] [PATH...]
 *
 * PATHs are files or directories relative to the root (default:
 * src bench tools examples, whichever exist). Exit status is 0 when
 * clean, 1 on violations, 2 on usage or I/O errors. Output order is
 * deterministic: files sorted by path, violations sorted by line.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rbvlint/rules.hh"

namespace fs = std::filesystem;

namespace {

struct Options
{
    fs::path root = ".";
    fs::path allowlistFile; ///< Empty: <root>/tools/rbvlint/allowlist.txt
    bool quiet = false;
    std::vector<std::string> paths;
};

int
usage(std::ostream &os)
{
    os << "usage: rbvlint [--root DIR] [--allowlist FILE] [--quiet]"
          " [--list-rules] [PATH...]\n"
          "Lints C++ sources against the repo's determinism and\n"
          "hygiene rules. PATHs default to: src bench tools examples.\n";
    return 2;
}

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".h" || ext == ".hpp" ||
           ext == ".cc" || ext == ".cpp" || ext == ".cxx";
}

/** Path relative to root with forward slashes. */
std::string
relPath(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    if (ec || rel.empty())
        rel = p;
    return rel.generic_string();
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool listRules = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            opt.root = argv[++i];
        } else if (arg == "--allowlist" && i + 1 < argc) {
            opt.allowlistFile = argv[++i];
        } else if (arg == "--quiet" || arg == "-q") {
            opt.quiet = true;
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "rbvlint: unknown flag " << arg << "\n";
            return usage(std::cerr);
        } else {
            opt.paths.push_back(arg);
        }
    }

    if (listRules) {
        for (const auto &r : rbvlint::allRules())
            std::cout << r << "\n";
        return 0;
    }

    if (!fs::exists(opt.root) || !fs::is_directory(opt.root)) {
        std::cerr << "rbvlint: root '" << opt.root.string()
                  << "' is not a directory\n";
        return 2;
    }

    // Load the allowlist (optional if the default file is absent).
    rbvlint::Allowlist allowlist;
    fs::path allowPath = opt.allowlistFile;
    const bool allowExplicit = !allowPath.empty();
    if (!allowExplicit)
        allowPath = opt.root / "tools" / "rbvlint" / "allowlist.txt";
    if (fs::exists(allowPath)) {
        std::string text;
        if (!readFile(allowPath, text)) {
            std::cerr << "rbvlint: cannot read allowlist "
                      << allowPath.string() << "\n";
            return 2;
        }
        std::string error;
        if (!rbvlint::Allowlist::parse(text, allowlist, error)) {
            std::cerr << "rbvlint: " << allowPath.string() << ": "
                      << error << "\n";
            return 2;
        }
    } else if (allowExplicit) {
        std::cerr << "rbvlint: allowlist " << allowPath.string()
                  << " not found\n";
        return 2;
    }

    if (opt.paths.empty())
        for (const char *d : {"src", "bench", "tools", "examples"})
            if (fs::exists(opt.root / d))
                opt.paths.push_back(d);

    // Collect files, deterministically ordered.
    std::vector<fs::path> files;
    for (const auto &p : opt.paths) {
        const fs::path full = opt.root / p;
        if (fs::is_directory(full)) {
            for (const auto &e :
                 fs::recursive_directory_iterator(full))
                if (e.is_regular_file() && lintableFile(e.path()))
                    files.push_back(e.path());
        } else if (fs::is_regular_file(full)) {
            files.push_back(full);
        } else {
            std::cerr << "rbvlint: no such path: " << full.string()
                      << "\n";
            return 2;
        }
    }
    std::sort(files.begin(), files.end(),
              [&](const fs::path &a, const fs::path &b) {
                  return relPath(a, opt.root) < relPath(b, opt.root);
              });
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::size_t violations = 0;
    std::size_t dirtyFiles = 0;
    for (const auto &f : files) {
        std::string text;
        if (!readFile(f, text)) {
            std::cerr << "rbvlint: cannot read " << f.string() << "\n";
            return 2;
        }
        const auto vs =
            rbvlint::lintFile(relPath(f, opt.root), text, allowlist);
        if (!vs.empty())
            ++dirtyFiles;
        violations += vs.size();
        for (const auto &v : vs)
            std::cout << v.path << ":" << v.line << ": [" << v.rule
                      << "] " << v.message << "\n";
    }

    if (!opt.quiet)
        std::cerr << "rbvlint: " << files.size() << " files, "
                  << violations << " violation(s)"
                  << (violations ? "" : " — clean") << "\n";
    return violations ? 1 : 0;
}
