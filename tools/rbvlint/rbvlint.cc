/**
 * @file
 * rbvlint driver: walk the tree, run the per-file rules and the
 * interprocedural passes, match against the baseline, report.
 *
 * Usage:
 *   rbvlint [--root DIR] [--allowlist FILE] [--baseline FILE]
 *           [--format text|json] [--write-baseline FILE]
 *           [--warn-unused-allow] [--quiet] [PATH...]
 *
 * PATHs are files or directories relative to the root (default:
 * src bench tools examples, whichever exist). Every file is lexed and
 * parsed into a per-TU symbol table; a whole-tree call graph then
 * feeds the interprocedural passes (R7–R9, reachability-R2) alongside
 * the per-file rules (R1–R6).
 *
 * Findings are matched against the committed baseline
 * (<root>/tools/rbvlint/baseline.txt by default): baselined findings
 * are reported but accepted, fresh findings fail the run, and stale
 * baseline entries fail it too (the baseline only shrinks).
 *
 * Exit status is 0 when clean, 1 on fresh findings or stale baseline
 * entries, 2 on usage or I/O errors. Output order is deterministic:
 * violations sorted by (path, line, rule).
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rbvlint/baseline.hh"
#include "rbvlint/parser.hh"
#include "rbvlint/passes.hh"
#include "rbvlint/rules.hh"

namespace fs = std::filesystem;

namespace {

struct Options
{
    fs::path root = ".";
    fs::path allowlistFile; ///< Empty: <root>/tools/rbvlint/allowlist.txt
    fs::path baselineFile;  ///< Empty: <root>/tools/rbvlint/baseline.txt
    fs::path writeBaseline; ///< Non-empty: regenerate and exit.
    bool json = false;
    bool warnUnusedAllow = false;
    bool quiet = false;
    std::vector<std::string> paths;
};

int
usage(std::ostream &os)
{
    os << "usage: rbvlint [--root DIR] [--allowlist FILE]"
          " [--baseline FILE]\n"
          "               [--format text|json]"
          " [--write-baseline FILE]\n"
          "               [--warn-unused-allow] [--quiet]"
          " [--list-rules] [PATH...]\n"
          "Lints C++ sources against the repo's determinism and\n"
          "hygiene rules. PATHs default to: src bench tools examples.\n";
    return 2;
}

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".h" || ext == ".hpp" ||
           ext == ".cc" || ext == ".cpp" || ext == ".cxx";
}

/** Path relative to root with forward slashes. */
std::string
relPath(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    if (ec || rel.empty())
        rel = p;
    return rel.generic_string();
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
jsonViolationArray(std::ostream &os, const char *name,
                   const std::vector<rbvlint::Violation> &vs)
{
    os << "  \"" << name << "\": [";
    for (std::size_t i = 0; i < vs.size(); ++i) {
        os << (i ? ",\n    " : "\n    ") << "{\"path\": \""
           << jsonEscape(vs[i].path) << "\", \"line\": " << vs[i].line
           << ", \"rule\": \"" << jsonEscape(vs[i].rule)
           << "\", \"message\": \"" << jsonEscape(vs[i].message)
           << "\"}";
    }
    os << (vs.empty() ? "]" : "\n  ]");
}

void
jsonStringArray(std::ostream &os, const char *name,
                const std::vector<std::string> &items)
{
    os << "  \"" << name << "\": [";
    for (std::size_t i = 0; i < items.size(); ++i)
        os << (i ? ", " : "") << "\"" << jsonEscape(items[i]) << "\"";
    os << "]";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool listRules = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            opt.root = argv[++i];
        } else if (arg == "--allowlist" && i + 1 < argc) {
            opt.allowlistFile = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            opt.baselineFile = argv[++i];
        } else if (arg == "--write-baseline" && i + 1 < argc) {
            opt.writeBaseline = argv[++i];
        } else if (arg == "--format" && i + 1 < argc) {
            const std::string fmt = argv[++i];
            if (fmt == "json")
                opt.json = true;
            else if (fmt != "text")
                return usage(std::cerr);
        } else if (arg.rfind("--format=", 0) == 0) {
            const std::string fmt = arg.substr(9);
            if (fmt == "json")
                opt.json = true;
            else if (fmt != "text")
                return usage(std::cerr);
        } else if (arg == "--warn-unused-allow") {
            opt.warnUnusedAllow = true;
        } else if (arg == "--quiet" || arg == "-q") {
            opt.quiet = true;
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "rbvlint: unknown flag " << arg << "\n";
            return usage(std::cerr);
        } else {
            opt.paths.push_back(arg);
        }
    }

    if (listRules) {
        for (const auto &r : rbvlint::allRules())
            std::cout << r << "\n";
        return 0;
    }

    if (!fs::exists(opt.root) || !fs::is_directory(opt.root)) {
        std::cerr << "rbvlint: root '" << opt.root.string()
                  << "' is not a directory\n";
        return 2;
    }

    // Load the allowlist (optional if the default file is absent).
    rbvlint::Allowlist allowlist;
    fs::path allowPath = opt.allowlistFile;
    const bool allowExplicit = !allowPath.empty();
    if (!allowExplicit)
        allowPath = opt.root / "tools" / "rbvlint" / "allowlist.txt";
    if (fs::exists(allowPath)) {
        std::string text;
        if (!readFile(allowPath, text)) {
            std::cerr << "rbvlint: cannot read allowlist "
                      << allowPath.string() << "\n";
            return 2;
        }
        std::string error;
        if (!rbvlint::Allowlist::parse(text, allowlist, error)) {
            std::cerr << "rbvlint: " << allowPath.string() << ": "
                      << error << "\n";
            return 2;
        }
    } else if (allowExplicit) {
        std::cerr << "rbvlint: allowlist " << allowPath.string()
                  << " not found\n";
        return 2;
    }

    // Load the baseline (optional if the default file is absent; not
    // applied when regenerating it).
    rbvlint::Baseline baseline;
    fs::path basePath = opt.baselineFile;
    const bool baseExplicit = !basePath.empty();
    if (!baseExplicit)
        basePath = opt.root / "tools" / "rbvlint" / "baseline.txt";
    if (opt.writeBaseline.empty() && fs::exists(basePath)) {
        std::string text;
        if (!readFile(basePath, text)) {
            std::cerr << "rbvlint: cannot read baseline "
                      << basePath.string() << "\n";
            return 2;
        }
        std::string error;
        if (!rbvlint::Baseline::parse(text, baseline, error)) {
            std::cerr << "rbvlint: " << basePath.string() << ": "
                      << error << "\n";
            return 2;
        }
    } else if (baseExplicit && opt.writeBaseline.empty()) {
        std::cerr << "rbvlint: baseline " << basePath.string()
                  << " not found\n";
        return 2;
    }

    if (opt.paths.empty())
        for (const char *d : {"src", "bench", "tools", "examples"})
            if (fs::exists(opt.root / d))
                opt.paths.push_back(d);

    // Collect files, deterministically ordered.
    std::vector<fs::path> files;
    for (const auto &p : opt.paths) {
        const fs::path full = opt.root / p;
        if (fs::is_directory(full)) {
            for (const auto &e :
                 fs::recursive_directory_iterator(full))
                if (e.is_regular_file() && lintableFile(e.path()))
                    files.push_back(e.path());
        } else if (fs::is_regular_file(full)) {
            files.push_back(full);
        } else {
            std::cerr << "rbvlint: no such path: " << full.string()
                      << "\n";
            return 2;
        }
    }
    std::sort(files.begin(), files.end(),
              [&](const fs::path &a, const fs::path &b) {
                  return relPath(a, opt.root) < relPath(b, opt.root);
              });
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Lex + parse every file, then run the whole-tree analysis.
    std::vector<rbvlint::TuUnit> units;
    units.reserve(files.size());
    for (const auto &f : files) {
        std::string text;
        if (!readFile(f, text)) {
            std::cerr << "rbvlint: cannot read " << f.string()
                      << "\n";
            return 2;
        }
        units.push_back(
            rbvlint::makeUnit(relPath(f, opt.root), text));
    }
    const std::vector<rbvlint::Violation> findings =
        rbvlint::analyzeTree(units, allowlist);

    if (!opt.writeBaseline.empty()) {
        rbvlint::Baseline fresh;
        for (const auto &v : findings)
            fresh.add(v);
        std::ofstream out(opt.writeBaseline, std::ios::binary);
        if (!out) {
            std::cerr << "rbvlint: cannot write "
                      << opt.writeBaseline.string() << "\n";
            return 2;
        }
        out << fresh.serialize();
        if (!opt.quiet)
            std::cerr << "rbvlint: wrote " << findings.size()
                      << " baseline entr"
                      << (findings.size() == 1 ? "y" : "ies")
                      << " to " << opt.writeBaseline.string() << "\n";
        return 0;
    }

    const rbvlint::BaselineMatch matched = baseline.match(findings);
    const std::vector<std::string> unusedAllow =
        allowlist.unusedEntries();
    const bool clean =
        matched.fresh.empty() && matched.stale.empty();

    if (opt.json) {
        std::ostream &os = std::cout;
        os << "{\n  \"version\": 2,\n  \"files\": " << files.size()
           << ",\n";
        jsonViolationArray(os, "violations", matched.fresh);
        os << ",\n";
        jsonViolationArray(os, "baselined", matched.baselined);
        os << ",\n";
        jsonStringArray(os, "stale_baseline", matched.stale);
        os << ",\n";
        jsonStringArray(os, "unused_allowlist", unusedAllow);
        os << ",\n  \"clean\": " << (clean ? "true" : "false")
           << "\n}\n";
    } else {
        for (const auto &v : matched.fresh)
            std::cout << v.path << ":" << v.line << ": [" << v.rule
                      << "] " << v.message << "\n";
        for (const auto &e : matched.stale)
            std::cerr << "rbvlint: stale baseline entry: " << e
                      << "\n";
        if (opt.warnUnusedAllow)
            for (const auto &e : unusedAllow)
                std::cerr << "rbvlint: warning: unused allowlist "
                             "entry: "
                          << e << "\n";
        if (!opt.quiet)
            std::cerr << "rbvlint: " << files.size() << " files, "
                      << matched.fresh.size() << " violation(s), "
                      << matched.baselined.size() << " baselined, "
                      << matched.stale.size()
                      << " stale baseline entr"
                      << (matched.stale.size() == 1 ? "y" : "ies")
                      << (clean ? " — clean" : "") << "\n";
    }
    return clean ? 0 : 1;
}
