/**
 * @file
 * rbvlint rule engine implementation.
 *
 * The engine is an AST-lite scanner: it walks the token stream with a
 * brace-matched scope stack (file / namespace / class / enum /
 * function / plain braces) and analyzes one statement at a time. That
 * is deliberately far short of a real C++ front end, but it is exact
 * enough for this codebase's style, fully deterministic, and has no
 * dependencies beyond the standard library.
 */

#include "rbvlint/rules.hh"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "rbvlint/lexer.hh"

namespace rbvlint {

namespace {

const char *const kR1 = "R1-nondet";
const char *const kR2 = "R2-global-state";
const char *const kR3 = "R3-io";
const char *const kR4 = "R4-include";
const char *const kR5 = "R5-units";
const char *const kR6 = "R6-swallow";
const char *const kR7 = "R7-det-iter";
const char *const kR8 = "R8-lock-discipline";
const char *const kR9 = "R9-rng-stream";

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
isHeaderPath(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".h") ||
           endsWith(path, ".hpp");
}

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

/** Random engine type names whose default constructor is a fixed,
 *  silently shared seed — banned in favor of explicit seeding. */
const std::set<std::string> &
engineNames()
{
    static const std::set<std::string> names = {
        "mt19937",        "mt19937_64",    "minstd_rand",
        "minstd_rand0",   "ranlux24",      "ranlux48",
        "ranlux24_base",  "ranlux48_base", "knuth_b",
        "default_random_engine",
    };
    return names;
}

const std::set<std::string> &
printfFamily()
{
    static const std::set<std::string> names = {
        "printf", "fprintf", "vprintf", "vfprintf",
        "puts",   "putchar", "fputs",
    };
    return names;
}

/** Integral type tokens R5 considers (Tick is the repo's cycle type). */
const std::set<std::string> &
intTypeNames()
{
    static const std::set<std::string> names = {
        "int",      "long",     "short",    "unsigned", "signed",
        "size_t",   "ptrdiff_t",
        "int8_t",   "int16_t",  "int32_t",  "int64_t",
        "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
        "uintptr_t", "Tick",
    };
    return names;
}

/** Name stems that read as a duration or a memory size. */
const std::vector<std::string> &
unitStems()
{
    static const std::vector<std::string> stems = {
        "interval", "latency",  "period",   "delay",
        "timeout",  "deadline", "quantum",  "duration",
        "capacity", "footprint", "workingset",
    };
    return stems;
}

/** Accepted unit suffixes on field names. */
const std::vector<std::string> &
unitSuffixes()
{
    static const std::vector<std::string> suffixes = {
        "Us", "Ns", "Ms", "Sec", "Cycles", "Ticks",
        "Bytes", "KiB", "MiB", "GiB", "Pct",
    };
    return suffixes;
}

bool
hasUnitSuffix(const std::string &name)
{
    for (const auto &s : unitSuffixes())
        if (endsWith(name, s))
            return true;
    return false;
}

bool
hasUnitStem(const std::string &name)
{
    const std::string low = lowered(name);
    for (const auto &stem : unitStems())
        if (low.find(stem) != std::string::npos)
            return true;
    return false;
}

enum class Scope
{
    File,
    Namespace,
    Class,
    Enum,
    Function,
    Braces, ///< Initializer list, lambda body, or plain block.
};

class Linter
{
  public:
    Linter(const std::string &path, const LexResult &lr,
           const Allowlist &allowlist)
        : path(path), lr(lr), allowlist(allowlist),
          inSrc(startsWith(path, "src/")),
          inStateScope(startsWith(path, "src/sim/") ||
                       startsWith(path, "src/core/") ||
                       startsWith(path, "src/os/")),
          inUnitScope(startsWith(path, "src/sim/") ||
                      startsWith(path, "src/core/")),
          header(isHeaderPath(path))
    {
    }

    std::vector<Violation>
    run()
    {
        if (header)
            checkGuard();
        scanTokens();
        scanCatches();
        walkStatements();
        std::sort(out.begin(), out.end(),
                  [](const Violation &a, const Violation &b) {
                      return a.line != b.line ? a.line < b.line
                                              : a.rule < b.rule;
                  });
        return std::move(out);
    }

  private:
    void
    emit(const std::string &rule, int line, std::string msg)
    {
        if (allowlist.allows(rule, path))
            return;
        for (const auto &p : lr.allows)
            if (p.line == line && ruleMatches(p.rule, rule))
                return;
        out.push_back(Violation{path, line, rule, std::move(msg)});
    }

    // ---- R4 (guard part): raw-line based. -------------------------

    void
    checkGuard()
    {
        std::string firstMacro;
        int directives = 0;
        for (std::size_t i = 0; i < lr.rawLines.size(); ++i) {
            std::istringstream is(lr.rawLines[i]);
            std::string word;
            if (!(is >> word) || word.empty() || word[0] != '#')
                continue;
            ++directives;
            std::string rest;
            if (word == "#")
                is >> word; // "# ifndef" spelling
            if (word == "#pragma" || word == "pragma") {
                if (is >> rest && rest == "once")
                    return; // guarded
            }
            if (directives == 1 &&
                (word == "#ifndef" || word == "ifndef")) {
                is >> firstMacro;
                continue;
            }
            if (directives == 2 && !firstMacro.empty() &&
                (word == "#define" || word == "define")) {
                if ((is >> rest) && rest == firstMacro)
                    return; // classic include guard
            }
            if (directives >= 2)
                break;
        }
        emit(kR4, 1,
             "header is not guarded (#pragma once or a leading "
             "#ifndef/#define include guard required)");
    }

    // ---- R1 / R3: flat token scans. -------------------------------

    const Token *
    tok(std::size_t i) const
    {
        return i < lr.tokens.size() ? &lr.tokens[i] : nullptr;
    }

    bool
    nextIs(std::size_t i, const char *text) const
    {
        const Token *t = tok(i + 1);
        return t && t->text == text;
    }

    /** True if token i is reached via '.' or '->' member access. */
    bool
    memberAccess(std::size_t i) const
    {
        if (i == 0)
            return false;
        const Token &p = lr.tokens[i - 1];
        if (p.kind == Tok::Punct && p.text == ".")
            return true;
        if (i >= 2 && p.kind == Tok::Punct && p.text == ">" &&
            lr.tokens[i - 2].kind == Tok::Punct &&
            lr.tokens[i - 2].text == "-")
            return true;
        return false;
    }

    void
    scanTokens()
    {
        if (!inSrc)
            return;
        for (std::size_t i = 0; i < lr.tokens.size(); ++i) {
            const Token &t = lr.tokens[i];
            if (t.kind != Tok::Ident)
                continue;

            // R1: nondeterminism sources.
            if (t.text == "random_device") {
                emit(kR1, t.line,
                     "std::random_device draws entropy from the "
                     "host; derive seeds from stats::SplitMix64 "
                     "instead");
            } else if (t.text == "system_clock") {
                emit(kR1, t.line,
                     "std::chrono::system_clock reads wall-clock "
                     "time; simulated time comes from the event "
                     "queue");
            } else if ((t.text == "rand" || t.text == "srand") &&
                       nextIs(i, "(") && !memberAccess(i)) {
                emit(kR1, t.line,
                     t.text + "() uses hidden global RNG state; use "
                              "stats::Rng");
            } else if (t.text == "time" && nextIs(i, "(") &&
                       !memberAccess(i)) {
                emit(kR1, t.line,
                     "time() reads the host clock; simulated time "
                     "comes from the event queue");
            } else if (engineNames().count(t.text) &&
                       !memberAccess(i)) {
                checkEngineUse(i);
            }

            // R3: stray output in library code.
            if (t.text == "cout") {
                emit(kR3, t.line,
                     "std::cout in library code; report through "
                     "src/exp/report.hh");
            } else if (printfFamily().count(t.text) &&
                       nextIs(i, "(") && !memberAccess(i)) {
                emit(kR3, t.line,
                     t.text + "() in library code; report through "
                              "src/exp/report.hh");
            }
        }
    }

    /** Index of the `}` matching the `{` at @p open (or past-end). */
    std::size_t
    matchBrace(std::size_t open) const
    {
        int depth = 0;
        for (std::size_t i = open; i < lr.tokens.size(); ++i) {
            const Token &t = lr.tokens[i];
            if (t.kind != Tok::Punct)
                continue;
            if (t.text == "{")
                ++depth;
            else if (t.text == "}" && --depth == 0)
                return i;
        }
        return lr.tokens.size();
    }

    // ---- R6: catch (...) that swallows the exception. -------------

    /**
     * A `catch (...)` whose body neither rethrows, nor calls
     * anything, nor assigns anything has silently discarded the
     * failure — nothing downstream can tell the run degraded. The
     * body must rethrow (`throw;`), record the failure (an
     * assignment), or hand it to a handler (a call).
     */
    void
    scanCatches()
    {
        if (!inSrc)
            return;
        for (std::size_t i = 0; i + 5 < lr.tokens.size(); ++i) {
            const Token &t = lr.tokens[i];
            if (t.kind != Tok::Ident || t.text != "catch")
                continue;
            // The lexer emits single-char puncts: `catch (...)` is
            // `catch` `(` `.` `.` `.` `)`.
            if (!(nextIs(i, "(") && nextIs(i + 1, ".") &&
                  nextIs(i + 2, ".") && nextIs(i + 3, ".") &&
                  nextIs(i + 4, ")") && nextIs(i + 5, "{")))
                continue;
            const std::size_t open = i + 6;
            const std::size_t close = matchBrace(open);
            bool handled = false;
            for (std::size_t k = open + 1; k < close && !handled;
                 ++k) {
                const Token &b = lr.tokens[k];
                if (b.kind == Tok::Ident &&
                    (b.text == "throw" || nextIs(k, "(")))
                    handled = true;
                else if (b.kind == Tok::Punct && b.text == "=")
                    handled = true;
            }
            if (!handled) {
                emit(kR6, t.line,
                     "catch (...) swallows the exception; rethrow, "
                     "record the failure, or call a handler");
            }
        }
    }

    /** Flag default-constructed (unseeded) standard random engines. */
    void
    checkEngineUse(std::size_t i)
    {
        const Token &t = lr.tokens[i];
        const Token *n1 = tok(i + 1);
        const Token *n2 = tok(i + 2);
        // `mt19937 rng;` / `mt19937 rng, ...` — declaration without
        // constructor arguments.
        if (n1 && n1->kind == Tok::Ident && n2 &&
            n2->kind == Tok::Punct &&
            (n2->text == ";" || n2->text == "," || n2->text == ")")) {
            emit(kR1, t.line,
                 "std::" + t.text +
                     " default-constructed (fixed default seed); "
                     "seed it explicitly from the experiment seed");
            return;
        }
        // `mt19937()` / `mt19937{}` — default-seeded temporary.
        if (n1 && n1->kind == Tok::Punct &&
            (n1->text == "(" || n1->text == "{") && n2 &&
            n2->kind == Tok::Punct &&
            (n2->text == ")" || n2->text == "}")) {
            emit(kR1, t.line,
                 "std::" + t.text +
                     " default-seeded temporary; seed it explicitly "
                     "from the experiment seed");
        }
    }

    // ---- R2 / R4 (using) / R5: statement walk. --------------------

    Scope
    scope() const
    {
        return scopes.back();
    }

    bool
    atNamespaceScope() const
    {
        return scope() == Scope::File || scope() == Scope::Namespace;
    }

    static bool
    stmtContains(const std::vector<Token> &stmt, const char *text)
    {
        for (const auto &t : stmt)
            if (t.text == text)
                return true;
        return false;
    }

    void
    walkStatements()
    {
        scopes.assign(1, Scope::File);
        std::vector<Token> stmt;

        for (std::size_t i = 0; i < lr.tokens.size(); ++i) {
            const Token &t = lr.tokens[i];
            if (t.kind != Tok::Punct) {
                stmt.push_back(t);
                continue;
            }
            if (t.text == "{") {
                analyzeStmt(stmt, '{');
                scopes.push_back(classifyBrace(stmt, i));
                stmt.clear();
            } else if (t.text == "}") {
                if (scopes.size() > 1)
                    scopes.pop_back();
                stmt.clear();
            } else if (t.text == ";") {
                analyzeStmt(stmt, ';');
                stmt.clear();
            } else if (t.text == ":" && scope() == Scope::Class &&
                       stmt.size() == 1 &&
                       (stmt[0].text == "public" ||
                        stmt[0].text == "private" ||
                        stmt[0].text == "protected")) {
                stmt.clear(); // access specifier
            } else {
                stmt.push_back(t);
            }
        }
    }

    Scope
    classifyBrace(const std::vector<Token> &stmt,
                  std::size_t brace_index) const
    {
        if (stmtContains(stmt, "namespace"))
            return Scope::Namespace;
        if (stmtContains(stmt, "enum"))
            return Scope::Enum;
        if (stmtContains(stmt, "="))
            return Scope::Braces; // brace initializer
        if (stmtContains(stmt, "class") ||
            stmtContains(stmt, "struct") ||
            stmtContains(stmt, "union"))
            return Scope::Class;
        if (brace_index > 0) {
            const Token &prev = lr.tokens[brace_index - 1];
            if (prev.kind == Tok::Punct &&
                (prev.text == "=" || prev.text == "," ||
                 prev.text == "(" || prev.text == "{"))
                return Scope::Braces;
            if (prev.kind == Tok::Ident && prev.text == "return")
                return Scope::Braces;
        }
        if (stmtContains(stmt, "("))
            return Scope::Function;
        if (scope() == Scope::Function || scope() == Scope::Braces)
            return Scope::Braces;
        return Scope::Braces;
    }

    void
    analyzeStmt(const std::vector<Token> &stmt, char term)
    {
        if (stmt.empty() || scope() == Scope::Enum)
            return;

        // R4: `using namespace` at header scope.
        if (header && stmt.size() >= 2 && stmt[0].text == "using" &&
            stmt[1].text == "namespace" && atNamespaceScope()) {
            emit(kR4, stmt[0].line,
                 "using namespace at header scope leaks into every "
                 "includer");
        }

        if (inStateScope)
            checkState(stmt, term);
        if (inUnitScope && scope() == Scope::Class)
            checkUnits(stmt, term);
    }

    /** R2: static / namespace-scope mutable state. */
    void
    checkState(const std::vector<Token> &stmt, char term)
    {
        const bool immutable = stmtContains(stmt, "const") ||
                               stmtContains(stmt, "constexpr") ||
                               stmtContains(stmt, "constinit");

        for (const auto &t : stmt) {
            if (t.text != "static")
                continue;
            if (immutable)
                break;
            // A '(' before any initializer means a function
            // declarator (static member / internal-linkage function)
            // — those carry no state. `static Foo x(1);` slips
            // through; this repo brace-initializes.
            bool declarator_paren = false;
            for (const auto &d : stmt) {
                if (d.text == "=")
                    break;
                if (d.text == "(") {
                    declarator_paren = true;
                    break;
                }
            }
            if (declarator_paren)
                break;
            emit(kR2, t.line,
                 "mutable static state is shared across the "
                 "parallel runner's threads; pass state explicitly "
                 "or make it constexpr");
            break;
        }

        // Namespace-scope variables without `static` are just as
        // shared. Skip declarations that clearly are not variables.
        if (!atNamespaceScope() || immutable)
            return;
        if (term != ';' && term != '{')
            return;
        const Token &first = stmt[0];
        if (first.kind != Tok::Ident)
            return;
        static const std::set<std::string> skipLead = {
            "class",  "struct",  "union",   "enum",   "template",
            "using",  "typedef", "extern",  "friend", "namespace",
            "static", "static_assert", "operator",
        };
        if (skipLead.count(first.text))
            return;
        if (stmtContains(stmt, "(") || stmtContains(stmt, "operator"))
            return;
        if (stmt.size() < 2)
            return;
        // Last identifier in the declarator head is the name.
        std::size_t name_idx = stmt.size();
        for (std::size_t k = 0; k < stmt.size(); ++k)
            if (stmt[k].text == "=") {
                name_idx = k;
                break;
            }
        if (name_idx < 2) // `x = ...` is an assignment, not a decl
            return;
        const Token &name = stmt[name_idx - 1];
        if (name.kind != Tok::Ident)
            return;
        emit(kR2, name.line,
             "mutable namespace-scope variable '" + name.text +
                 "' is shared across the parallel runner's threads");
    }

    /** R5: unit suffixes on integer duration/size fields. */
    void
    checkUnits(const std::vector<Token> &stmt, char term)
    {
        (void)term;
        static const std::set<std::string> skipLead = {
            "using", "typedef", "friend", "template", "class",
            "struct", "enum", "union", "operator", "public",
            "private", "protected", "static_assert",
        };
        if (stmt[0].kind != Tok::Ident || skipLead.count(stmt[0].text))
            return;

        // Field name: the token before '=', else the last token.
        std::size_t name_idx = stmt.size();
        for (std::size_t k = 0; k < stmt.size(); ++k)
            if (stmt[k].text == "=") {
                name_idx = k;
                break;
            }
        if (name_idx == 0)
            return;
        const Token &name = stmt[name_idx - 1];
        static const std::set<std::string> notNames = {
            "const", "constexpr", "mutable", "volatile", "override",
            "final", "noexcept", "default", "delete",
        };
        if (name.kind != Tok::Ident || notNames.count(name.text))
            return;

        // A '(' before the name means a function declarator.
        for (std::size_t k = 0; k + 1 < name_idx; ++k)
            if (stmt[k].text == "(")
                return;

        bool integral = false;
        for (std::size_t k = 0; k + 1 < name_idx; ++k)
            if (intTypeNames().count(stmt[k].text)) {
                integral = true;
                break;
            }
        if (!integral)
            return;
        if (hasUnitStem(name.text) && !hasUnitSuffix(name.text))
            emit(kR5, name.line,
                 "integer field '" + name.text +
                     "' reads as a duration/size but has no unit "
                     "suffix (Us/Ns/Ms/Cycles/Bytes/KiB/MiB)");
    }

    const std::string &path;
    const LexResult &lr;
    const Allowlist &allowlist;
    const bool inSrc;
    const bool inStateScope;
    const bool inUnitScope;
    const bool header;

    std::vector<Scope> scopes;
    std::vector<Violation> out;
};

} // namespace

bool
ruleMatches(const std::string &spec, const std::string &rule_id)
{
    if (spec == "*" || spec == rule_id)
        return true;
    const std::size_t dash = rule_id.find('-');
    if (dash == std::string::npos)
        return false;
    return spec == rule_id.substr(0, dash) ||
           spec == rule_id.substr(dash + 1);
}

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> rules = {
        kR1, kR2, kR3, kR4, kR5, kR6, kR7, kR8, kR9};
    return rules;
}

bool
Allowlist::allows(const std::string &rule_id,
                  const std::string &path) const
{
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto &e = entries[i];
        if (!ruleMatches(e.rule, rule_id))
            continue;
        const bool hit =
            e.pathSuffix == "*" || e.pathSuffix == path ||
            (!e.pathSuffix.empty() && e.pathSuffix.back() == '/' &&
             startsWith(path, e.pathSuffix)) ||
            endsWith(path, e.pathSuffix);
        if (hit) {
            used[i] = true;
            return true;
        }
    }
    return false;
}

std::vector<std::string>
Allowlist::unusedEntries() const
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < entries.size(); ++i)
        if (!used[i])
            out.push_back(entries[i].rule + " " +
                          entries[i].pathSuffix);
    return out;
}

bool
Allowlist::parse(const std::string &text, Allowlist &out,
                 std::string &error)
{
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string rule, suffix, extra;
        if (!(fields >> rule))
            continue; // blank / comment-only line
        if (!(fields >> suffix) || (fields >> extra)) {
            std::ostringstream err;
            err << "allowlist line " << lineno
                << ": expected '<rule> <path-suffix>'";
            error = err.str();
            return false;
        }
        bool known = rule == "*";
        for (const auto &id : allRules())
            known = known || ruleMatches(rule, id);
        if (!known) {
            std::ostringstream err;
            err << "allowlist line " << lineno << ": unknown rule '"
                << rule << "'";
            error = err.str();
            return false;
        }
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (out.entries[i].rule == rule &&
                out.entries[i].pathSuffix == suffix) {
                std::ostringstream err;
                err << "allowlist line " << lineno
                    << ": duplicate entry '" << rule << " " << suffix
                    << "'";
                error = err.str();
                return false;
            }
        }
        out.add(AllowEntry{rule, suffix});
    }
    return true;
}

std::vector<Violation>
lintFile(const std::string &path, const std::string &text,
         const Allowlist &allowlist)
{
    const LexResult lr = lex(text);
    return Linter(path, lr, allowlist).run();
}

std::vector<Violation>
lintLexed(const std::string &path, const LexResult &lex,
          const Allowlist &allowlist)
{
    return Linter(path, lex, allowlist).run();
}

} // namespace rbvlint
