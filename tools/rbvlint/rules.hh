/**
 * @file
 * rbvlint rule engine: the per-file rules (R1–R6) and the shared
 * violation/allowlist vocabulary used by every pass.
 *
 * The interprocedural rules (R7-det-iter, R8-lock-discipline,
 * R9-rng-stream, reachability-upgraded R2) are implemented in
 * passes.hh on top of parser.hh symbol tables and callgraph.hh; they
 * share this file's Violation type, rule-id spelling, pragma, and
 * allowlist machinery.
 *
 * Per-file rules, each with a stable identifier used in reports,
 * allowlist entries, and inline escape pragmas:
 *
 *  - R1-nondet:       no nondeterminism sources in src/ (rand(),
 *                     srand, std::random_device, time(),
 *                     std::chrono::system_clock, unseeded engines).
 *  - R2-global-state: no mutable global / static non-const state in
 *                     src/sim, src/core, src/os (the parallel runner
 *                     shares library state across threads).
 *  - R3-io:           no std::cout / printf-family output in library
 *                     code; reporting goes through src/exp/report.hh.
 *  - R4-include:      headers are guarded and never put
 *                     `using namespace` at header scope.
 *  - R5-units:        integer fields in src/sim and src/core whose
 *                     names read as durations or sizes carry a unit
 *                     suffix (Us/Ns/Ms/Cycles/Bytes/KiB/MiB).
 *
 * A violation can be suppressed either with an inline
 * `// rbvlint: allow(<rule>)` on (or directly above) the offending
 * line, or with an allowlist entry `<rule> <path-suffix>`.
 */

#ifndef RBVLINT_RULES_HH
#define RBVLINT_RULES_HH

#include <string>
#include <vector>

#include "rbvlint/lexer.hh"

namespace rbvlint {

struct Violation
{
    std::string path; ///< Repo-relative, forward slashes.
    int line;
    std::string rule; ///< e.g. "R2-global-state".
    std::string message;
};

/** One allowlist entry: a rule spec plus a path suffix it exempts. */
struct AllowEntry
{
    std::string rule; ///< Rule spec ("R3", "io", "*", ...).
    std::string pathSuffix;
};

class Allowlist
{
  public:
    void
    add(AllowEntry e)
    {
        entries.push_back(std::move(e));
        used.push_back(false);
    }

    /** True if @p rule_id at @p path is exempted. */
    bool allows(const std::string &rule_id,
                const std::string &path) const;

    /**
     * Parse an allowlist file: one `<rule> <path-suffix>` pair per
     * line, '#' comments. Returns false (with @p error set) on a
     * malformed or duplicate line; parsing is all-or-nothing.
     */
    static bool parse(const std::string &text, Allowlist &out,
                      std::string &error);

    std::size_t size() const { return entries.size(); }

    /**
     * Entries that never suppressed anything since parse, formatted
     * as written ("<rule> <path-suffix>"). Meaningful only after a
     * full run; stale entries should be deleted.
     */
    std::vector<std::string> unusedEntries() const;

  private:
    std::vector<AllowEntry> entries;
    /** Set by allows() so unused entries can be reported. */
    mutable std::vector<bool> used;
};

/**
 * True if a rule spec (from a pragma or allowlist) matches a full
 * rule id: "*", the full id, the "RN" shorthand, or the bare name
 * ("global-state") all match "RN-name".
 */
bool ruleMatches(const std::string &spec, const std::string &rule_id);

/** Names of all rules, in report order. */
const std::vector<std::string> &allRules();

/**
 * Lint one file. @p path must be repo-relative with forward slashes
 * (rule applicability is decided from it); @p text is the file
 * contents. Runs the per-file rules only (R1–R6); the
 * interprocedural passes (R7–R9, reachability-R2) live in passes.hh
 * and need the whole tree.
 */
std::vector<Violation> lintFile(const std::string &path,
                                const std::string &text,
                                const Allowlist &allowlist);

/** Same, over an already-lexed file (the driver lexes once). */
std::vector<Violation> lintLexed(const std::string &path,
                                 const LexResult &lex,
                                 const Allowlist &allowlist);

} // namespace rbvlint

#endif // RBVLINT_RULES_HH
